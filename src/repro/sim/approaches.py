"""The three compared consolidation approaches behind a common interface.

Each approach consumes one observed monitoring window per placement
period and produces a placement plus per-server static frequency
settings.  They differ exactly where the paper says they differ:

* :class:`ProposedApproach` — correlation-aware allocation (Fig 2) and
  the Eqn-4 correlation-discounted frequency.
* :class:`BfdApproach` — best-fit decreasing on predicted peaks and
  peak-sum frequency (no correlation awareness anywhere).
* :class:`PcpApproach` — Verma et al.'s envelope clustering with off-peak
  provisioning and a shared peak buffer; frequency provisioned for the
  off-peak sum plus the buffer.
* :class:`FfdApproach` — first-fit decreasing; not in the paper's tables,
  used by the ablation benches to isolate the packing-order contribution.

All approaches share the same prediction machinery (last-value by
default, per the paper), so differences in the results are attributable
to placement and v/f policy alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping
from typing import Protocol

from repro.baselines.bfd import best_fit_decreasing
from repro.baselines.ffd import first_fit_decreasing
from repro.baselines.pcp import PcpConfig, peak_clustering_placement
from repro.core.allocation import AllocationConfig, CorrelationAwareAllocator
from repro.core.correlation import RollingCostHorizon
from repro.core.sharding import ShardedAllocator, ShardingConfig
from repro.core.placement import Placement
from repro.core.vf_control import correlation_aware_frequency, peak_sum_frequency
from repro.infrastructure.dvfs import FrequencyLadder, StaticVfSetting
from repro.prediction.predictors import LastValuePredictor, Predictor
from repro.traces.trace import ReferenceSpec, TraceSet

__all__ = [
    "ApproachDecision",
    "ConsolidationApproach",
    "ProposedApproach",
    "BfdApproach",
    "FfdApproach",
    "PcpApproach",
]


@dataclass(frozen=True)
class ApproachDecision:
    """One period's placement and static frequency plan."""

    placement: Placement
    frequencies: Mapping[int, StaticVfSetting]
    predicted_references: Mapping[str, float]
    info: Mapping[str, object] = field(default_factory=dict)


class ConsolidationApproach(Protocol):
    """A consolidation scheme the replay engine can drive."""

    name: str

    def decide(self, window: TraceSet) -> ApproachDecision:
        """Observe the finished period's window, plan the next period."""
        ...

    def reset(self) -> None:
        """Drop all cross-period state (fresh replay)."""
        ...


class _ReferenceHistory:
    """Shared per-VM reference history + prediction helper.

    Supports *oracle priming*: the replay engine may inject the true
    upcoming references (see ``ReplayConfig.oracle``), which then replace
    the predictor's output for exactly one decision.  This separates
    placement quality from predictor error in the ablation experiments.

    Histories are bounded to the predictor's declared ``history_window``
    (see :class:`~repro.prediction.predictors.Predictor`): a replay over
    thousands of periods must not grow per-VM lists forever when the
    predictor only ever reads the last few values.  Predictors without
    the attribute, or declaring ``None``, keep the full history.
    """

    def __init__(self, spec: ReferenceSpec, predictor: Predictor, default: float) -> None:
        self._spec = spec
        self._predictor = predictor
        self._default = default
        window = getattr(predictor, "history_window", None)
        if window is not None and window < 0:
            raise ValueError(f"history_window must be non-negative, got {window}")
        self._bound = window
        self._history: dict[str, list[float]] = {}
        self._primed: dict[str, float] | None = None

    def prime(self, true_references: dict[str, float]) -> None:
        """Inject the true upcoming references (consumed by next predict)."""
        self._primed = dict(true_references)

    def observe_and_predict(self, window: TraceSet) -> dict[str, float]:
        observed = window.references(self._spec)
        primed = self._primed
        self._primed = None
        bound = self._bound
        predictions: dict[str, float] = {}
        for vm, value in observed.items():
            history = self._history.setdefault(vm, [])
            history.append(value)
            if bound is not None and len(history) > bound:
                del history[: len(history) - bound]
            if primed is not None and vm in primed:
                predictions[vm] = primed[vm]
            else:
                predictions[vm] = self._predictor.predict(history)
        return predictions

    def reset(self) -> None:
        self._history.clear()
        self._primed = None

    def snapshot(self) -> dict:
        return {
            "history": {vm: list(values) for vm, values in self._history.items()},
            "primed": None if self._primed is None else dict(self._primed),
        }

    def restore(self, state: dict) -> None:
        self._history = {vm: list(values) for vm, values in state["history"].items()}
        self._primed = None if state["primed"] is None else dict(state["primed"])


class ProposedApproach:
    """The paper's scheme: Fig-2 allocation + Eqn-4 frequency.

    The pairwise cost matrix is estimated over a rolling *horizon* of the
    last ``horizon_periods`` monitoring windows, not just the most recent
    one.  Section IV-A's streaming formulation measures correlation
    "across a certain time horizon"; a multi-period horizon matters in
    practice because a single window can transiently de-correlate a pair
    that usually peaks together — trusting that optimistic snapshot both
    co-locates the pair and over-discounts the frequency, exactly when it
    is about to surge jointly.  Peaks over a longer horizon are
    conservative by construction (they can only grow), so the discount
    only engages for pairs whose de-correlation is *stable*.

    The horizon bookkeeping lives in
    :class:`~repro.core.correlation.RollingCostHorizon`.  Peak-mode
    references fold per-window parts bit-exactly regardless of
    ``horizon_mode``; percentile references rebuild the concatenated
    horizon under ``horizon_mode="exact"`` (the default, bit-identical
    reference behaviour) or fold per-window quantile marker states under
    ``horizon_mode="p2"`` — the approximate-but-gated O(N²W)-per-period
    path the QoS sweep opts into.
    """

    def __init__(
        self,
        n_cores: int,
        freq_levels_ghz: tuple[float, ...],
        max_servers: int | None = None,
        reference: ReferenceSpec | None = None,
        allocation: AllocationConfig | None = None,
        predictor: Predictor | None = None,
        default_reference: float = 1.0,
        horizon_periods: int = 3,
        horizon_mode: str = "exact",
        allocator: str = "exact",
        sharding: ShardingConfig | None = None,
    ) -> None:
        if allocator not in ("exact", "sharded"):
            raise ValueError(f"allocator must be 'exact' or 'sharded', got {allocator!r}")
        self.name = "Proposed"
        self._n_cores = n_cores
        self._ladder = FrequencyLadder(freq_levels_ghz)
        self._max_servers = max_servers
        self._reference = reference or ReferenceSpec()
        self._mode = allocator
        # Either backend answers to the same lifecycle (reset_cache /
        # snapshot / restore), so the audit and checkpoint layers — which
        # duck-type the ``_allocator`` attribute — drive both unchanged.
        if allocator == "sharded":
            self._allocator = ShardedAllocator(allocation, sharding, self._reference)
        else:
            self._allocator = CorrelationAwareAllocator(allocation)
        self._refs = _ReferenceHistory(
            self._reference, predictor or LastValuePredictor(default_reference), default_reference
        )
        self._horizon = RollingCostHorizon(self._reference, horizon_periods, horizon_mode)
        # Fingerprint of the placed population: a swap to different VM
        # names drops the allocator's cross-period reindex cache, whose
        # O(N²) snapshot would otherwise pin a dead population in memory.
        self._population: tuple[str, ...] | None = None
        # Latest cost matrix, kept for the evacuation hook (the fault
        # layer re-places VMs against the same period's correlations).
        self._last_matrix = None

    def prime_oracle(self, true_references: dict[str, float]) -> None:
        """Inject the true upcoming references (oracle ablation mode)."""
        self._refs.prime(true_references)

    def decide(self, window: TraceSet) -> ApproachDecision:
        predicted = self._refs.observe_and_predict(window)
        if self._population != window.names:
            if self._population is not None:
                # Sharded mode: this drops every *per-shard* reindex
                # cache, not just a global one — each would otherwise pin
                # a dead population's O(n²) permuted matrix in memory.
                self._allocator.reset_cache()
            self._population = window.names
        if self._mode == "sharded":
            # Single-window costs: sharding re-derives its clusters and
            # summaries from the current window each period, so the
            # rolling horizon (whose fold produces a *dense* matrix)
            # deliberately stays out of this path.
            placement = self._allocator.allocate(
                window, predicted, self._n_cores, self._max_servers
            )
            view = self._allocator.cost_view()
            self._last_matrix = view
            frequencies = {
                server: correlation_aware_frequency(
                    list(members), predicted, view.cost, self._ladder, self._n_cores
                )
                for server, members in placement.by_server().items()
            }
            info = {"num_shards": self._allocator.last_num_shards}
            return ApproachDecision(placement, frequencies, predicted, info)
        matrix = self._horizon.push(window)
        self._last_matrix = matrix
        placement = self._allocator.allocate(
            list(window.names),
            predicted,
            matrix.cost,
            self._n_cores,
            self._max_servers,
            cost_array=matrix.as_array(),
            name_index=matrix.name_index,
        )
        frequencies = {
            server: correlation_aware_frequency(
                list(members), predicted, matrix.cost, self._ladder, self._n_cores
            )
            for server, members in placement.by_server().items()
        }
        mean_cost = matrix.mean_offdiagonal()
        return ApproachDecision(placement, frequencies, predicted, {"mean_cost": mean_cost})

    def evacuate(
        self,
        placement: Placement,
        failed_servers: tuple[int, ...],
        references: Mapping[str, float],
        num_servers: int,
    ) -> Placement:
        """Incrementally re-place the failed servers' VMs.

        The fault layer's hook (see :func:`repro.sim.faults.evacuate_fleet`):
        delegates to the allocator's incremental
        :meth:`~repro.core.allocation.CorrelationAwareAllocator.evacuate`
        against the cost matrix of the latest :meth:`decide`, whose
        reindex cache it reuses.
        """
        matrix = self._last_matrix
        if matrix is None:
            raise RuntimeError("evacuate() requires a prior decide()")
        if self._mode == "sharded":
            # The sharded path prices evacuees through its cost view and
            # invalidates the reindex cache of every shard the evacuation
            # touches (failed or receiving) — see ShardedAllocator.
            return self._allocator.evacuate(
                placement, failed_servers, references, self._n_cores, num_servers
            )
        return self._allocator.evacuate(
            placement,
            failed_servers,
            references,
            self._n_cores,
            num_servers,
            cost_array=matrix.as_array(),
            name_index=matrix.name_index,
        )

    def reset(self) -> None:
        self._refs.reset()
        self._allocator.reset_cache()
        self._horizon.reset()
        self._population = None
        self._last_matrix = None

    def snapshot(self) -> dict:
        """Serializable copy of all cross-period state (for checkpoints).

        ``_last_matrix`` is an immutable :class:`CostMatrix` (read-only
        backing array), so holding a reference rather than a deep copy
        is safe.  In sharded mode it is a view over the allocator's own
        plan, so it is *not* serialized — :meth:`restore` re-derives it,
        keeping the snapshot canonical (byte-identical round trips).
        """
        return {
            "refs": self._refs.snapshot(),
            "horizon": self._horizon.snapshot(),
            "allocator": self._allocator.snapshot(),
            "population": self._population,
            "last_matrix": None if self._mode == "sharded" else self._last_matrix,
        }

    def restore(self, state: dict) -> None:
        """Reinstall a :meth:`snapshot` taken from an identical config."""
        self._refs.restore(state["refs"])
        self._horizon.restore(state["horizon"])
        self._allocator.restore(state["allocator"])
        self._population = state["population"]
        if self._mode == "sharded":
            allocator = self._allocator
            self._last_matrix = (
                allocator.cost_view() if allocator.last_num_shards else None
            )
        else:
            self._last_matrix = state["last_matrix"]


class _PackingApproach:
    """Common body of the correlation-unaware packing baselines."""

    def __init__(
        self,
        name: str,
        packer,
        n_cores: int,
        freq_levels_ghz: tuple[float, ...],
        max_servers: int | None = None,
        reference: ReferenceSpec | None = None,
        predictor: Predictor | None = None,
        default_reference: float = 1.0,
    ) -> None:
        self.name = name
        self._packer = packer
        self._n_cores = n_cores
        self._ladder = FrequencyLadder(freq_levels_ghz)
        self._max_servers = max_servers
        self._reference = reference or ReferenceSpec()
        self._refs = _ReferenceHistory(
            self._reference, predictor or LastValuePredictor(default_reference), default_reference
        )

    def prime_oracle(self, true_references: dict[str, float]) -> None:
        """Inject the true upcoming references (oracle ablation mode)."""
        self._refs.prime(true_references)

    def decide(self, window: TraceSet) -> ApproachDecision:
        predicted = self._refs.observe_and_predict(window)
        placement = self._packer(
            list(window.names), predicted, self._n_cores, self._max_servers
        )
        frequencies = {
            server: peak_sum_frequency(list(members), predicted, self._ladder, self._n_cores)
            for server, members in placement.by_server().items()
        }
        return ApproachDecision(placement, frequencies, predicted)

    def reset(self) -> None:
        self._refs.reset()

    def snapshot(self) -> dict:
        return {"refs": self._refs.snapshot()}

    def restore(self, state: dict) -> None:
        self._refs.restore(state["refs"])


class BfdApproach(_PackingApproach):
    """Best-fit decreasing + peak-sum static frequency (Table II's BFD)."""

    def __init__(self, n_cores: int, freq_levels_ghz: tuple[float, ...], **kwargs) -> None:
        super().__init__("BFD", best_fit_decreasing, n_cores, freq_levels_ghz, **kwargs)


class FfdApproach(_PackingApproach):
    """First-fit decreasing + peak-sum static frequency (ablation only)."""

    def __init__(self, n_cores: int, freq_levels_ghz: tuple[float, ...], **kwargs) -> None:
        super().__init__("FFD", first_fit_decreasing, n_cores, freq_levels_ghz, **kwargs)


class PcpApproach:
    """Peak Clustering-based Placement (Table II's PCP [6]).

    Predicts *two* references per VM — the off-peak provisioning size and
    the peak (buffer sizing) — with the same predictor family as the other
    approaches, clusters on the observed window's envelopes, and
    provisions frequency for the off-peak sum plus the shared buffer.
    """

    def __init__(
        self,
        n_cores: int,
        freq_levels_ghz: tuple[float, ...],
        max_servers: int | None = None,
        pcp: PcpConfig | None = None,
        predictor: Predictor | None = None,
        peak_predictor: Predictor | None = None,
        default_reference: float = 1.0,
    ) -> None:
        self.name = "PCP"
        self._n_cores = n_cores
        self._ladder = FrequencyLadder(freq_levels_ghz)
        self._max_servers = max_servers
        self._pcp = pcp or PcpConfig()
        offpeak_spec = ReferenceSpec(self._pcp.offpeak_percentile)
        peak_spec = ReferenceSpec(100.0)
        self._offpeak_refs = _ReferenceHistory(
            offpeak_spec, predictor or LastValuePredictor(default_reference), default_reference
        )
        self._peak_refs = _ReferenceHistory(
            peak_spec, peak_predictor or LastValuePredictor(default_reference), default_reference
        )

    def prime_oracle(self, true_references: dict[str, float]) -> None:
        """Inject true upcoming *peak* references (oracle ablation mode).

        The off-peak provisioning size keeps using the predictor: PCP's
        buffer sizing is what the oracle study isolates.
        """
        self._peak_refs.prime(true_references)

    def decide(self, window: TraceSet) -> ApproachDecision:
        offpeak = self._offpeak_refs.observe_and_predict(window)
        peak = self._peak_refs.observe_and_predict(window)
        result = peak_clustering_placement(
            window, offpeak, peak, self._n_cores, self._pcp, self._max_servers
        )
        placement = result.placement
        cluster_of = {
            vm: index for index, cluster in enumerate(result.clusters) for vm in cluster
        }
        frequencies: dict[int, StaticVfSetting] = {}
        for server, members in placement.by_server().items():
            # PCP provisions capacity for off-peak sum + shared buffer
            # (same-cluster excursions add up, the worst cluster sizes the
            # buffer), so its static frequency targets exactly that.
            committed = sum(offpeak[vm] for vm in members)
            per_cluster: dict[int, float] = {}
            for vm in members:
                excursion = max(peak[vm] - offpeak[vm], 0.0)
                key = cluster_of[vm]
                per_cluster[key] = per_cluster.get(key, 0.0) + excursion
            buffer = max(per_cluster.values(), default=0.0)
            target = (committed + buffer) / self._n_cores * self._ladder.fmax_ghz
            frequencies[server] = StaticVfSetting(
                freq_ghz=self._ladder.quantize_up(target), target_ghz=target
            )
        return ApproachDecision(
            placement,
            frequencies,
            peak,
            {"num_clusters": result.num_clusters, "clusters": result.clusters},
        )

    def reset(self) -> None:
        self._offpeak_refs.reset()
        self._peak_refs.reset()

    def snapshot(self) -> dict:
        return {
            "offpeak_refs": self._offpeak_refs.snapshot(),
            "peak_refs": self._peak_refs.snapshot(),
        }

    def restore(self, state: dict) -> None:
        self._offpeak_refs.restore(state["offpeak_refs"])
        self._peak_refs.restore(state["peak_refs"])
