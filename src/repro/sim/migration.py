"""Migration cost model (an extension beyond the paper).

The paper re-places VMs every hour and never charges for the moves; in a
real datacenter each live migration copies the VM's memory image across
the network and burns CPU on both hosts.  This module provides a simple,
widely used first-order model so the replay engine can report the energy
the consolidation itself costs:

* a migration transfers ``memory_gb`` at ``network_gbps`` (plus a dirty-
  page factor for live migration's iterative copy), taking
  ``duration_s`` per move;
* during the copy, source and destination each draw ``overhead_w`` of
  extra power (CPU for compression/dirty tracking, NIC at line rate).

Energy per migration is therefore ``2 * overhead_w * duration_s``.
The defaults (4 GB VM, 10 GbE, 1.3x dirty-page factor, 60 W overhead)
give ~0.5 kJ per move — small against a server-hour (~1 MJ), which is
exactly why the paper could ignore it at ``t_period = 1 h``; the model
makes that argument checkable, and the consolidation example reports it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["MigrationCostModel"]


@dataclass(frozen=True)
class MigrationCostModel:
    """First-order live-migration cost model.

    Parameters
    ----------
    memory_gb:
        Memory image size per VM.
    network_gbps:
        Migration-network bandwidth.
    dirty_page_factor:
        Multiplier on the transferred volume for live migration's
        iterative pre-copy rounds (1.0 = cold migration).
    overhead_w:
        Extra power drawn on *each* of the two involved hosts during the
        transfer.
    """

    memory_gb: float = 4.0
    network_gbps: float = 10.0
    dirty_page_factor: float = 1.3
    overhead_w: float = 60.0

    def __post_init__(self) -> None:
        if self.memory_gb <= 0:
            raise ValueError("memory size must be positive")
        if self.network_gbps <= 0:
            raise ValueError("network bandwidth must be positive")
        if self.dirty_page_factor < 1.0:
            raise ValueError("dirty-page factor cannot be below 1.0")
        if self.overhead_w < 0:
            raise ValueError("overhead power must be non-negative")

    @property
    def duration_s(self) -> float:
        """Transfer time of one migration."""
        volume_gbit = self.memory_gb * 8.0 * self.dirty_page_factor
        return volume_gbit / self.network_gbps

    @property
    def energy_per_migration_j(self) -> float:
        """Extra energy of one migration (both hosts)."""
        return 2.0 * self.overhead_w * self.duration_s

    def total_energy_j(self, migrations: int) -> float:
        """Extra energy of ``migrations`` moves."""
        if migrations < 0:
            raise ValueError("migration count must be non-negative")
        return migrations * self.energy_per_migration_j

    def overhead_fraction(self, migrations: int, base_energy_j: float) -> float:
        """Migration energy as a fraction of the fleet's base energy."""
        if migrations < 0:
            raise ValueError("migration count must be non-negative")
        # NaN passes a plain ``<= 0`` comparison (all NaN comparisons are
        # false) and would silently propagate; reject every non-finite or
        # non-positive base instead of returning inf/NaN.
        if not math.isfinite(base_energy_j) or base_energy_j <= 0:
            raise ValueError("base energy must be positive and finite")
        return self.total_energy_j(migrations) / base_energy_j
