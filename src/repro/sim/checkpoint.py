"""Crash-safe checkpoint files for mid-replay state (``checkpoint_layout="v1"``).

:func:`repro.sim.engine.replay` can periodically serialize its *complete*
mid-stream state — accumulator partials, streaming estimators, allocator
caches, RNG bit-generator states — so a killed replay resumes from the
last checkpoint **byte-identically** to an uninterrupted run.  This
module owns the file format and the durability contract; the engine owns
*what* goes into a checkpoint (see ``sim/engine.py``) and the auditor
(``sim/audit.py``) validates the state right before each write.

File format (``checkpoint_layout="v1"``)::

    MAGIC (8 bytes, b"RPCKPT01")
    header length (4 bytes, big-endian)
    header (UTF-8 JSON): {"layout", "repro_version", "meta",
                          "sections": [{"name", "length", "crc32"}, ...]}
    header CRC32 (4 bytes, big-endian)
    section payloads, concatenated in header order

Durability: checkpoints are written to a temporary file in the same
directory, flushed, ``fsync``'d, then atomically renamed over the final
path (followed by a best-effort directory fsync), so a crash mid-write
can never leave a torn file under the final name.  Every section carries
a CRC32; :func:`load_checkpoint` raises :class:`CheckpointError` on a
bad magic, truncation, checksum mismatch or layout version mismatch —
corruption is *detected and reported*, never silently resumed from.
"""

from __future__ import annotations

import contextlib
import json
import math
import os
import re
import struct
import warnings
import zlib
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "CHECKPOINT_LAYOUT",
    "Checkpoint",
    "CheckpointError",
    "CheckpointPolicy",
    "checkpoint_file",
    "list_checkpoints",
    "load_checkpoint",
    "load_latest_checkpoint",
    "prune_checkpoints",
    "save_checkpoint",
]

#: Schema version stamped into (and required of) every checkpoint header.
CHECKPOINT_LAYOUT = "v1"

#: File magic; the trailing digits version the *container framing* (the
#: byte layout around the JSON header), while ``CHECKPOINT_LAYOUT``
#: versions the header/section schema itself.
_MAGIC = b"RPCKPT01"

_FILE_PATTERN = re.compile(r"^period_(\d{6,})\.ckpt$")

#: The auditor's accepted ``on_violation`` modes (see ``sim/audit.py``).
_ON_VIOLATION_MODES = ("raise", "warn", "degrade")


class CheckpointError(RuntimeError):
    """A checkpoint file is corrupt, truncated or version-mismatched."""


def _require_positive_int(value, name: str, minimum: int = 1) -> int:
    """Validate an integer-valued field (NaN-safe, mirrors MigrationCostModel)."""
    try:
        numeric = float(value)
    except (TypeError, ValueError):
        raise ValueError(f"{name} must be an integer >= {minimum}, got {value!r}") from None
    if not math.isfinite(numeric) or numeric != int(numeric) or numeric < minimum:
        raise ValueError(f"{name} must be an integer >= {minimum}, got {value!r}")
    return int(numeric)


@dataclass(frozen=True)
class CheckpointPolicy:
    """When and where :func:`repro.sim.engine.replay` writes checkpoints.

    ``every_periods`` is the emission cadence (a checkpoint lands after
    every K-th completed placement period); ``keep`` bounds the number of
    files retained in ``path`` (older ones are pruned so resume always
    has a fallback if the newest file is corrupt); ``audit`` runs the
    :mod:`repro.sim.audit` invariant checks right before each write, with
    ``on_violation`` selecting the auditor's failure mode.
    """

    path: str | Path
    every_periods: int = 10
    keep: int = 2
    audit: bool = True
    on_violation: str = "raise"

    def __post_init__(self) -> None:
        if not str(self.path):
            raise ValueError("checkpoint path must be a non-empty directory path")
        object.__setattr__(self, "path", Path(self.path))
        object.__setattr__(
            self,
            "every_periods",
            _require_positive_int(self.every_periods, "every_periods"),
        )
        object.__setattr__(self, "keep", _require_positive_int(self.keep, "keep"))
        if self.on_violation not in _ON_VIOLATION_MODES:
            raise ValueError(
                f"on_violation must be one of {_ON_VIOLATION_MODES}, "
                f"got {self.on_violation!r}"
            )


@dataclass(frozen=True)
class Checkpoint:
    """A loaded checkpoint: JSON-safe metadata plus named binary sections."""

    meta: dict
    sections: dict = field(default_factory=dict)


def checkpoint_file(directory: str | Path, period: int) -> Path:
    """The canonical file name for the checkpoint taken after ``period``."""
    return Path(directory) / f"period_{period:06d}.ckpt"


def list_checkpoints(directory: str | Path) -> list[Path]:
    """Checkpoint files under ``directory``, newest (highest period) first."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    found = []
    for entry in directory.iterdir():
        match = _FILE_PATTERN.match(entry.name)
        if match is not None:
            found.append((int(match.group(1)), entry))
    return [path for _, path in sorted(found, reverse=True)]


def prune_checkpoints(directory: str | Path, keep: int) -> None:
    """Remove all but the newest ``keep`` checkpoint files (best effort)."""
    for stale in list_checkpoints(directory)[keep:]:
        # Suppressed OSError: benign race with a concurrent reader.
        with contextlib.suppress(OSError):
            stale.unlink()


def save_checkpoint(path: str | Path, meta: dict, sections: dict) -> Path:
    """Atomically write a v1 checkpoint file.

    ``meta`` must be JSON-serializable; ``sections`` maps section names
    to raw payload bytes.  The write goes to a temporary file in the
    same directory (same filesystem, so the final rename is atomic),
    is flushed and fsync'd, then renamed over ``path``.
    """
    # Import here: ``repro/__init__`` imports ``repro.sim`` which imports
    # this module, so a top-level import would be circular.
    from repro import __version__

    path = Path(path)
    names = list(sections)
    payloads = [bytes(sections[name]) for name in names]
    header = {
        "layout": CHECKPOINT_LAYOUT,
        "repro_version": __version__,
        "meta": meta,
        "sections": [
            {"name": name, "length": len(payload), "crc32": zlib.crc32(payload)}
            for name, payload in zip(names, payloads, strict=True)
        ],
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")

    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    try:
        with open(tmp, "wb") as handle:
            handle.write(_MAGIC)
            handle.write(struct.pack(">I", len(header_bytes)))
            handle.write(header_bytes)
            handle.write(struct.pack(">I", zlib.crc32(header_bytes)))
            for payload in payloads:
                handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(OSError):
            tmp.unlink()
        raise
    _fsync_directory(path.parent)
    return path


def _fsync_directory(directory: Path) -> None:
    """Best-effort directory fsync so the rename itself is durable."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open support
        return
    try:
        # Suppressed OSError: some filesystems reject fsync on dirs.
        with contextlib.suppress(OSError):
            os.fsync(fd)
    finally:
        os.close(fd)


def load_checkpoint(path: str | Path) -> Checkpoint:
    """Read and verify a v1 checkpoint file.

    Raises :class:`CheckpointError` on any corruption: bad magic,
    truncated header or payload, CRC mismatch (header or any section),
    or a ``layout`` stamp other than :data:`CHECKPOINT_LAYOUT`.
    """
    path = Path(path)
    try:
        blob = path.read_bytes()
    except OSError as error:
        raise CheckpointError(f"cannot read checkpoint {path}: {error}") from error

    if len(blob) < len(_MAGIC) + 4 or not blob.startswith(_MAGIC):
        raise CheckpointError(f"{path} is not a checkpoint file (bad magic)")
    offset = len(_MAGIC)
    (header_length,) = struct.unpack_from(">I", blob, offset)
    offset += 4
    if len(blob) < offset + header_length + 4:
        raise CheckpointError(f"{path} is truncated (incomplete header)")
    header_bytes = blob[offset : offset + header_length]
    offset += header_length
    (header_crc,) = struct.unpack_from(">I", blob, offset)
    offset += 4
    if zlib.crc32(header_bytes) != header_crc:
        raise CheckpointError(f"{path} header checksum mismatch")
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise CheckpointError(f"{path} header is not valid JSON: {error}") from error

    layout = header.get("layout")
    if layout != CHECKPOINT_LAYOUT:
        raise CheckpointError(
            f"{path} has checkpoint_layout {layout!r}; "
            f"this build reads {CHECKPOINT_LAYOUT!r}"
        )

    sections: dict = {}
    for entry in header.get("sections", ()):
        name, length, crc = entry["name"], entry["length"], entry["crc32"]
        payload = blob[offset : offset + length]
        if len(payload) != length:
            raise CheckpointError(f"{path} is truncated (section {name!r} incomplete)")
        if zlib.crc32(payload) != crc:
            raise CheckpointError(f"{path} section {name!r} checksum mismatch")
        sections[name] = payload
        offset += length
    if offset != len(blob):
        raise CheckpointError(f"{path} has {len(blob) - offset} trailing bytes")
    return Checkpoint(meta=dict(header.get("meta", {})), sections=sections)


def load_latest_checkpoint(
    source: str | Path,
) -> tuple[Path, Checkpoint] | None:
    """The newest *valid* checkpoint under a directory (or a single file).

    A corrupt newest file is reported with a warning and the scan falls
    back to the next-newest — never silently wrong, never fatal; callers
    cold-start when nothing valid remains (returns ``None``).
    """
    source = Path(source)
    if source.is_file():
        candidates = [source]
    else:
        candidates = list_checkpoints(source)
    for candidate in candidates:
        try:
            return candidate, load_checkpoint(candidate)
        except CheckpointError as error:
            warnings.warn(
                f"skipping unusable checkpoint: {error}",
                RuntimeWarning,
                stacklevel=2,
            )
    return None
