"""Seeded fault injection for the replay engine (an extension).

The paper evaluates consolidation on a datacenter that never breaks;
this module makes the fleet breakable so the energy argument can be
weighed against availability.  Three fault kinds, all at placement-period
granularity:

* **crashes** — a server goes dark for the period it crashes in;
* **delayed recoveries** — a crashed server stays down for a geometric
  number of additional periods (``mean_downtime_periods``);
* **stragglers** — a healthy server transiently delivers only a fraction
  of its capacity for one period (``degraded_capacity_factor``).

Determinism contract: a :class:`FaultSchedule` is a pure function of
``(FaultConfig, num_servers, num_periods)``.  All randomness comes from
one ``numpy.random.default_rng(config.seed)`` generator in a *versioned
draw layout* (``schedule_layout``), mirroring the trace generators'
``stream_layout``/``profile_layout`` convention: layout ``"v1"`` draws
three fixed-shape blocks (crash uniforms, downtime geometrics, straggler
uniforms) regardless of the configured rates, so the schedule never
depends on trace content, worker count, or call order.  New layouts are
append-only; existing ones are frozen.

Evacuation contract (used by :func:`repro.sim.engine.replay`): when a
period's decision places VMs on servers the schedule marks failed, the
engine re-places exactly those VMs onto the surviving fleet *after* the
approach's decision — approaches stay fault-oblivious, so the fault-free
replay path is bit-identical to an engine without this module.
Correlation-aware approaches expose an incremental ``evacuate`` hook
(see :meth:`repro.core.allocation.CorrelationAwareAllocator.evacuate`);
everything else falls back to the best-fit-decreasing re-placement here.
Receiving servers' static frequencies are bumped conservatively (peak-sum
target, quantized up, never lowered) and evacuation may overcommit a
surviving server — under capacity loss a violated QoS target beats an
unhosted VM.  VMs are dropped (reported as unserved demand) only when no
surviving server exists at all.
"""

from __future__ import annotations

import hashlib
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.placement import Placement
from repro.infrastructure.dvfs import FrequencyLadder, StaticVfSetting
from repro.sim.migration import MigrationCostModel

__all__ = ["FaultConfig", "FaultSchedule", "evacuate_fleet"]

#: Capacity-fit slack shared with the allocators.
_FIT_EPS = 1e-12

#: Known draw layouts (append-only; see the module docstring).
_LAYOUTS = ("v1",)


@dataclass(frozen=True)
class FaultConfig:
    """Fault-injection parameters (disabled by default in the engine).

    Parameters
    ----------
    seed:
        Seed of the schedule's dedicated RNG stream.
    crash_rate:
        Per-server, per-period probability of a fresh crash (a server
        that is already down cannot crash again until it recovers).
    mean_downtime_periods:
        Mean number of *additional* periods a crashed server stays down
        beyond the crash period (geometrically distributed; ``0.0``
        means every crash recovers after exactly one period).
    degraded_rate:
        Per-server, per-period probability that a *healthy* server runs
        degraded (straggler) for that period.
    degraded_capacity_factor:
        Capacity multiplier applied to a degraded server, in ``(0, 1]``.
    migration:
        Cost model charged once per evacuated VM.
    schedule_layout:
        RNG draw-layout version (``"v1"``); append-only like the trace
        generators' stream layouts.
    """

    seed: int = 0
    crash_rate: float = 0.01
    mean_downtime_periods: float = 1.0
    degraded_rate: float = 0.0
    degraded_capacity_factor: float = 0.5
    migration: MigrationCostModel = field(default_factory=MigrationCostModel)
    schedule_layout: str = "v1"

    def __post_init__(self) -> None:
        if not 0.0 <= self.crash_rate <= 1.0:
            raise ValueError(f"crash_rate must lie in [0, 1], got {self.crash_rate}")
        if self.mean_downtime_periods < 0.0:
            raise ValueError("mean_downtime_periods must be non-negative")
        if not 0.0 <= self.degraded_rate <= 1.0:
            raise ValueError(f"degraded_rate must lie in [0, 1], got {self.degraded_rate}")
        if not 0.0 < self.degraded_capacity_factor <= 1.0:
            raise ValueError(
                f"degraded_capacity_factor must lie in (0, 1], "
                f"got {self.degraded_capacity_factor}"
            )
        if self.schedule_layout not in _LAYOUTS:
            raise ValueError(
                f"unknown schedule_layout {self.schedule_layout!r}; known: {_LAYOUTS}"
            )


class FaultSchedule:
    """A materialised, immutable fault timeline for one replay.

    ``failed[p, s]`` says server ``s`` is down during period ``p``;
    ``capacity_scale[p, s]`` multiplies the server's capacity (1.0 when
    healthy, ``degraded_capacity_factor`` while a straggler — never both
    with ``failed``).  Period indices are the replay engine's absolute
    period indices, so period 0 (the warm-up period) carries draws but is
    never read by the engine.
    """

    __slots__ = ("config", "failed", "capacity_scale")

    def __init__(
        self, config: FaultConfig, failed: np.ndarray, capacity_scale: np.ndarray
    ) -> None:
        self.config = config
        failed.flags.writeable = False
        capacity_scale.flags.writeable = False
        self.failed = failed
        self.capacity_scale = capacity_scale

    @classmethod
    def build(
        cls, config: FaultConfig, num_servers: int, num_periods: int
    ) -> FaultSchedule:
        """Materialise the schedule for a ``(servers, periods)`` geometry.

        Layout ``"v1"`` draws, in order: crash uniforms
        ``(num_periods, num_servers)``, downtime geometrics of the same
        shape, straggler uniforms of the same shape.  Every block is
        drawn in full regardless of the configured rates, so the stream
        position — and therefore the schedule — depends only on the
        config and the geometry.
        """
        if num_servers < 1:
            raise ValueError("num_servers must be positive")
        if num_periods < 1:
            raise ValueError("num_periods must be positive")
        rng = np.random.default_rng(config.seed)
        shape = (num_periods, num_servers)
        crash_u = rng.random(shape)
        # Additional downtime periods beyond the crash period: geometric
        # with mean ``mean_downtime_periods`` (p = 1 / (1 + mean); the
        # generator's geometric is >= 1, so subtract the crash period).
        downtime = rng.geometric(1.0 / (1.0 + config.mean_downtime_periods), shape) - 1
        straggler_u = rng.random(shape)

        failed = np.zeros(shape, dtype=bool)
        down_until = np.full(num_servers, -1, dtype=np.int64)
        for period in range(num_periods):
            fresh = (crash_u[period] < config.crash_rate) & (down_until < period)
            down_until = np.where(fresh, period + downtime[period], down_until)
            failed[period] = down_until >= period
        capacity_scale = np.where(
            ~failed & (straggler_u < config.degraded_rate),
            config.degraded_capacity_factor,
            1.0,
        )
        return cls(config, failed, capacity_scale)

    @property
    def num_periods(self) -> int:
        return int(self.failed.shape[0])

    @property
    def num_servers(self) -> int:
        return int(self.failed.shape[1])

    def failed_at(self, period: int) -> np.ndarray:
        """Read-only boolean fleet mask for one period."""
        return self.failed[period]

    def scale_at(self, period: int) -> np.ndarray:
        """Read-only per-server capacity multipliers for one period."""
        return self.capacity_scale[period]

    def failed_server_periods(self, first_period: int = 0) -> int:
        """Total (server, period) cells down from ``first_period`` on."""
        return int(self.failed[first_period:].sum())

    def content_hash(self) -> str:
        """SHA-256 over the realized schedule arrays.

        The schedule is a pure function of ``(config, fleet, horizon)``,
        so a resumed replay rebuilds it from scratch; the hash — stored
        in each checkpoint's metadata — proves the rebuild drew the
        *same* schedule the checkpointed run was following (a changed
        seed, rate, or RNG stream layout changes the hash and forces a
        cold start instead of a silently divergent resume).
        """
        digest = hashlib.sha256()
        digest.update(repr(self.failed.shape).encode())
        digest.update(self.failed.tobytes())
        digest.update(self.capacity_scale.tobytes())
        return digest.hexdigest()


def _clamped_refs(
    vm_ids: Sequence[str], references: Mapping[str, float], capacity: float
) -> dict[str, float]:
    """References clamped into ``[0, capacity]`` (allocator convention)."""
    return {
        vm: min(max(float(references.get(vm, 0.0)), 0.0), capacity) for vm in vm_ids
    }


def _greedy_evacuate(
    placement: Placement,
    failed: frozenset[int] | set[int],
    refs: Mapping[str, float],
    capacity: float,
    num_servers: int,
) -> Placement:
    """Best-fit-decreasing re-placement of the failed servers' VMs.

    The fallback used for approaches without an ``evacuate`` hook: the
    evacuees (descending reference, then name — the FFD discipline) go to
    the surviving server with the *least* free capacity that still fits
    them; when nothing fits, to the survivor with the most free capacity
    (overcommit); when no survivor exists, they stay unplaced.
    """
    free = {
        server: capacity for server in range(num_servers) if server not in failed
    }
    evacuees = []
    for vm, server in placement.assignment.items():
        if server in failed:
            evacuees.append(vm)
        else:
            free[server] -= refs[vm]
    targets: dict[str, int] = {}
    for vm in sorted(evacuees, key=lambda vm: (-refs[vm], vm)):
        demand = refs[vm]
        fitting = [s for s in free if demand <= free[s] + _FIT_EPS]
        if fitting:
            target = min(fitting, key=lambda s: (free[s], s))
        elif free:
            target = min(free, key=lambda s: (-free[s], s))
        else:
            continue
        free[target] -= demand
        targets[vm] = target
    assignment = {}
    for vm, server in placement.assignment.items():
        if server in failed:
            if vm in targets:
                assignment[vm] = targets[vm]
        else:
            assignment[vm] = server
    return Placement(assignment, num_servers=max(num_servers, placement.num_servers))


def _bump_frequencies(
    placement: Placement,
    frequencies: Mapping[int, StaticVfSetting],
    moved: Sequence[str],
    refs: Mapping[str, float],
    n_cores: int,
    ladder: FrequencyLadder,
    failed: frozenset[int] | set[int],
) -> dict[int, StaticVfSetting]:
    """Static plan after an evacuation: receivers bumped, never lowered.

    Receiving servers get at least the peak-sum frequency of their new
    membership (quantized up) — conservative on purpose: the decision's
    correlation-aware discount was computed for the pre-fault membership
    and does not transfer.  Failed servers drop out of the plan.
    """
    updated = {
        server: setting
        for server, setting in frequencies.items()
        if server not in failed
    }
    for server in sorted({placement.server_of(vm) for vm in moved}):
        committed = sum(refs[vm] for vm in placement.vms_on(server))
        target = committed / n_cores * ladder.fmax_ghz
        quantized = ladder.quantize_up(target)
        current = updated.get(server)
        if current is None or quantized > current.freq_ghz:
            updated[server] = StaticVfSetting(freq_ghz=quantized, target_ghz=target)
    return updated


def evacuate_fleet(
    placement: Placement,
    frequencies: Mapping[int, StaticVfSetting],
    failed_mask: np.ndarray,
    references: Mapping[str, float],
    n_cores: int,
    num_servers: int,
    ladder: FrequencyLadder,
    approach: object | None = None,
) -> tuple[Placement, Mapping[int, StaticVfSetting], tuple[str, ...], tuple[str, ...]]:
    """Move every VM off the failed servers; returns the amended plan.

    Returns ``(placement, frequencies, moved, unplaced)``: the amended
    placement, the amended static-frequency plan, the evacuated VM ids
    (one migration each), and the VM ids that could not be hosted
    anywhere (no surviving server — their demand goes unserved).

    When ``approach`` exposes an ``evacuate(placement, failed_servers,
    references, num_servers)`` hook, re-placement is delegated to it
    (the correlation-aware incremental path); otherwise the best-fit
    fallback above runs.  Either way the hook only decides *where*
    evacuees go — the frequency bump and the accounting stay here, so
    every approach is charged under the same contract.
    """
    failed = frozenset(int(s) for s in np.flatnonzero(failed_mask))
    if not failed:
        return placement, frequencies, (), ()
    evacuees = tuple(
        vm for vm, server in placement.assignment.items() if server in failed
    )
    if not evacuees:
        return placement, frequencies, (), ()
    capacity = float(n_cores)
    refs = _clamped_refs(placement.vm_ids, references, capacity)
    if approach is not None and hasattr(approach, "evacuate"):
        failed_servers = tuple(sorted(failed))
        new_placement = approach.evacuate(
            placement, failed_servers, references, num_servers
        )
    else:
        new_placement = _greedy_evacuate(
            placement, failed, refs, capacity, num_servers
        )
    stranded = [
        vm
        for vm in evacuees
        if vm in new_placement.assignment and new_placement.assignment[vm] in failed
    ]
    if stranded:
        raise ValueError(f"evacuation left VMs on failed servers: {stranded}")
    moved = tuple(vm for vm in evacuees if vm in new_placement.assignment)
    unplaced = tuple(vm for vm in evacuees if vm not in new_placement.assignment)
    new_frequencies = _bump_frequencies(
        new_placement, frequencies, moved, refs, n_cores, ladder, failed
    )
    return new_placement, new_frequencies, moved, unplaced
