"""Churn-driven control loop: decide/admit/retire from an event stream.

The paper's power manager is an online controller; this module drives a
:class:`~repro.core.manager.PowerManager` the way a long-running
allocation service would be driven — from a timestamped arrival/departure
event stream — through the incremental-membership contract
(:meth:`~repro.core.manager.PowerManager.admit` /
:meth:`~repro.core.manager.PowerManager.retire`) instead of
swap-and-rebuild.  Per period the engine applies the events that fell due,
builds the active population's monitoring window from the master trace
set, times one :meth:`~repro.core.manager.PowerManager.decide`, and
records a :class:`ChurnRecord`.

The loop is checkpointable mid-churn through :mod:`repro.sim.checkpoint`:
a checkpoint carries the manager snapshot plus the engine's cursor state
(active set, event cursor, per-period records) under the same CRC-framed,
fingerprint-bound format the replay engine uses, so a killed churn run
resumes byte-identically to an uninterrupted one.
"""

from __future__ import annotations

import hashlib
import math
import pickle
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Callable, Sequence

import numpy as np

from repro.core.manager import PowerManager
from repro.sim.checkpoint import (
    CHECKPOINT_LAYOUT,
    CheckpointPolicy,
    checkpoint_file,
    load_latest_checkpoint,
    prune_checkpoints,
    save_checkpoint,
)
from repro.traces.trace import TraceSet

__all__ = ["ChurnEngine", "ChurnEvent", "ChurnRecord", "synthesize_churn_events"]

_ACTIONS = ("arrive", "depart")


@dataclass(frozen=True)
class ChurnEvent:
    """One timestamped membership change in the request stream."""

    time_s: float
    action: str
    vm: str

    def __post_init__(self) -> None:
        if not math.isfinite(self.time_s) or self.time_s < 0:
            raise ValueError(f"event time must be finite and non-negative, got {self.time_s!r}")
        if self.action not in _ACTIONS:
            raise ValueError(f"action must be one of {_ACTIONS}, got {self.action!r}")
        if not self.vm:
            raise ValueError("event vm name must be non-empty")


@dataclass(frozen=True)
class ChurnRecord:
    """Per-period outcome of the churn loop (one decide cycle)."""

    period: int
    active_vms: int
    arrivals: int
    departures: int
    servers: int
    #: Sum of the chosen Eqn-4 static frequencies across active servers —
    #: the same monotone static-energy proxy the sharded deviation gate
    #: uses (:func:`repro.core.sharding.placement_energy_proxy`).
    energy_proxy_ghz: float
    decide_ms: float


def synthesize_churn_events(
    names: Sequence[str],
    periods: int,
    period_duration_s: float,
    *,
    events_per_period: int = 2,
    initial_active_fraction: float = 0.5,
    seed: int = 0,
) -> tuple[ChurnEvent, ...]:
    """Deterministic arrival/departure stream over a trace population.

    The initial population (``initial_active_fraction`` of ``names``, in
    trace order) arrives at ``t=0``; every subsequent period draws
    ``events_per_period`` events — alternating departures of random
    active VMs and arrivals from the inactive pool, never emptying the
    active set — at uniform-random offsets within the period.  All
    randomness flows from ``seed``, so the same inputs always produce
    the same stream (a requirement for fingerprint-bound checkpoints).
    """
    names = tuple(names)
    if len(set(names)) != len(names):
        raise ValueError("VM names must be unique")
    if periods < 1:
        raise ValueError("periods must be at least 1")
    if not math.isfinite(period_duration_s) or period_duration_s <= 0:
        raise ValueError("period_duration_s must be positive")
    if events_per_period < 0:
        raise ValueError("events_per_period must be non-negative")
    if not 0.0 < initial_active_fraction <= 1.0:
        raise ValueError("initial_active_fraction must lie in (0, 1]")
    rng = np.random.default_rng(seed)
    initial = max(1, int(round(initial_active_fraction * len(names))))
    active = list(names[:initial])
    inactive = list(names[initial:])
    events = [ChurnEvent(0.0, "arrive", vm) for vm in active]
    for period in range(1, periods):
        offsets = np.sort(rng.uniform(0.0, period_duration_s, size=events_per_period))
        base = period * period_duration_s
        for k in range(events_per_period):
            depart = k % 2 == 0 and len(active) > 1
            if depart:
                index = int(rng.integers(len(active)))
                vm = active.pop(index)
                inactive.append(vm)
                events.append(ChurnEvent(base + float(offsets[k]), "depart", vm))
            elif inactive:
                index = int(rng.integers(len(inactive)))
                vm = inactive.pop(index)
                active.append(vm)
                events.append(ChurnEvent(base + float(offsets[k]), "arrive", vm))
    return tuple(events)


def _canonicalize(obj, table: dict[str, str]):
    """Re-share restored strings against the master trace's name objects.

    ``pickle.dumps`` output depends on object *identity* sharing; an
    unpickled manager snapshot carries equal-valued private string
    copies, which would make a resumed run's re-snapshot pickle to
    different bytes than an uninterrupted twin's (same contract as
    ``sim/engine.py``'s ``_canonicalize_restored``).
    """
    if isinstance(obj, str):
        canonical = table.get(obj)
        return canonical if canonical is not None else sys.intern(obj)
    if isinstance(obj, dict):
        return {_canonicalize(k, table): _canonicalize(v, table) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_canonicalize(item, table) for item in obj]
    if isinstance(obj, tuple):
        return tuple(_canonicalize(item, table) for item in obj)
    return obj


class ChurnEngine:
    """Drives a :class:`PowerManager` from a churn event stream.

    ``traces`` is the master demand pool: every event's VM must name one
    of its rows, and period ``k``'s monitoring window for the active
    population is the sample block ``[k*W, (k+1)*W)`` (wrapping around
    the trace length for unbounded streams), where ``W`` is
    ``samples_per_period``.  One period of wall-clock time is therefore
    ``samples_per_period * traces.period_s`` seconds of event time.

    Active VMs are kept in membership order — survivors keep their
    relative order, arrivals append — which is exactly the window layout
    the incremental horizon fold expects, so a static population pays no
    rebuilds at all and a churn period invalidates only what its delta
    touches.
    """

    def __init__(
        self,
        manager: PowerManager,
        traces: TraceSet,
        events: Sequence[ChurnEvent],
        samples_per_period: int,
        checkpoint: CheckpointPolicy | None = None,
    ) -> None:
        if samples_per_period < 1:
            raise ValueError("samples_per_period must be at least 1")
        events = tuple(events)
        known = set(traces.names)
        unknown = sorted({event.vm for event in events} - known)
        if unknown:
            raise ValueError(f"events name VMs absent from the traces: {unknown!r}")
        times = [event.time_s for event in events]
        if any(later < earlier for earlier, later in zip(times, times[1:], strict=False)):
            raise ValueError("events must be sorted by non-decreasing time")
        self._manager = manager
        self._traces = traces
        self._events = events
        self._samples = int(samples_per_period)
        self._policy = checkpoint
        self._row_of = {name: i for i, name in enumerate(traces.names)}
        self._active: list[str] = []
        self._cursor = 0
        self._next_period = 0
        self._records: list[ChurnRecord] = []

    @property
    def manager(self) -> PowerManager:
        """The driven power manager."""
        return self._manager

    @property
    def period_duration_s(self) -> float:
        """Event-time seconds covered by one placement period."""
        return self._samples * self._traces.period_s

    @property
    def active_vms(self) -> tuple[str, ...]:
        """Currently active VMs in membership order."""
        return tuple(self._active)

    @property
    def next_period(self) -> int:
        """The next period index :meth:`run` will execute."""
        return self._next_period

    @property
    def records(self) -> tuple[ChurnRecord, ...]:
        """Per-period records accumulated so far (resume-inclusive)."""
        return tuple(self._records)

    def fingerprint(self) -> str:
        """Identity hash binding checkpoints to this exact churn run.

        Covers the event stream, trace identity, window geometry and the
        manager's frozen config — everything the loop's trajectory
        depends on — so a checkpoint can never silently resume into a
        different run.
        """
        identity = (
            CHECKPOINT_LAYOUT,
            "churn-v1",
            self._events,
            self._traces.names,
            tuple(self._traces.matrix.shape),
            float(self._traces.period_s),
            float(self._traces.matrix.sum()),
            int(self._samples),
            self._manager.config,
        )
        blob = pickle.dumps(identity, protocol=pickle.HIGHEST_PROTOCOL)
        return hashlib.sha256(blob).hexdigest()

    def latency_ms(self) -> dict[str, float]:
        """p50/p99/max decide latency over the recorded periods."""
        if not self._records:
            raise ValueError("no periods recorded yet")
        samples = np.array([record.decide_ms for record in self._records])
        return {
            "p50_ms": float(np.percentile(samples, 50.0)),
            "p99_ms": float(np.percentile(samples, 99.0)),
            "max_ms": float(samples.max()),
        }

    def _apply_events_until(self, deadline_s: float) -> tuple[int, int]:
        """Admit/retire every event with ``time_s < deadline_s``."""
        arrivals = departures = 0
        while self._cursor < len(self._events):
            event = self._events[self._cursor]
            if event.time_s >= deadline_s:
                break
            if event.action == "arrive":
                self._manager.admit(event.vm)
                self._active.append(event.vm)
                arrivals += 1
            else:
                self._manager.retire(event.vm)
                self._active.remove(event.vm)
                departures += 1
            self._cursor += 1
        return arrivals, departures

    def _window(self, period: int) -> TraceSet:
        rows = np.array([self._row_of[vm] for vm in self._active], dtype=np.intp)
        total = self._traces.matrix.shape[1]
        cols = np.arange(period * self._samples, (period + 1) * self._samples) % total
        block = np.ascontiguousarray(self._traces.matrix[np.ix_(rows, cols)])
        block.flags.writeable = False
        return TraceSet.from_matrix(block, tuple(self._active), self._traces.period_s)

    def run(
        self,
        periods: int,
        should_stop: Callable[[], bool] | None = None,
        on_record: Callable[[ChurnRecord], None] | None = None,
    ) -> tuple[ChurnRecord, ...]:
        """Execute periods ``next_period .. periods-1`` of the loop.

        ``should_stop`` is polled at each period boundary (the serve
        front end wires SIGTERM to it); stopping writes a final
        checkpoint when a policy is configured, so the interrupted run
        resumes exactly where it left off.  ``on_record`` receives each
        period's record as it lands (periodic reporting).
        """
        if periods < self._next_period:
            raise ValueError(
                f"run to period {periods} but the engine is already at {self._next_period}"
            )
        while self._next_period < periods:
            if should_stop is not None and should_stop():
                if self._policy is not None and self._next_period > 0:
                    self._checkpoint(self._next_period - 1)
                break
            period = self._next_period
            deadline = (period + 1) * self.period_duration_s
            arrivals, departures = self._apply_events_until(deadline)
            if not self._active:
                record = ChurnRecord(period, 0, arrivals, departures, 0, 0.0, 0.0)
            else:
                window = self._window(period)
                started = time.perf_counter()
                decision = self._manager.decide(window)
                decide_ms = (time.perf_counter() - started) * 1e3
                energy = sum(
                    setting.freq_ghz for setting in decision.frequencies.values()
                )
                record = ChurnRecord(
                    period=period,
                    active_vms=len(self._active),
                    arrivals=arrivals,
                    departures=departures,
                    servers=decision.placement.num_servers,
                    energy_proxy_ghz=float(energy),
                    decide_ms=decide_ms,
                )
            self._records.append(record)
            if on_record is not None:
                on_record(record)
            self._next_period = period + 1
            if self._policy is not None and (period + 1) % self._policy.every_periods == 0:
                self._checkpoint(period)
        return tuple(self._records)

    def _checkpoint(self, period: int) -> Path:
        policy = self._policy
        meta = {
            "kind": "churn",
            "fingerprint": self.fingerprint(),
            "period": int(period),
            "next_period": int(self._next_period),
        }
        sections = {
            "manager": pickle.dumps(
                self._manager.snapshot(), protocol=pickle.HIGHEST_PROTOCOL
            ),
            "engine": pickle.dumps(
                {
                    "active": list(self._active),
                    "cursor": int(self._cursor),
                    "next_period": int(self._next_period),
                    "records": list(self._records),
                },
                protocol=pickle.HIGHEST_PROTOCOL,
            ),
        }
        path = save_checkpoint(checkpoint_file(policy.path, period), meta, sections)
        prune_checkpoints(policy.path, policy.keep)
        return path

    def resume_latest(self) -> int | None:
        """Restore from the newest valid checkpoint, if any.

        Returns the period the engine will execute next, or ``None``
        when no usable checkpoint exists (cold start).  Checkpoints
        whose identity fingerprint does not match this run are refused
        — resuming a different event stream or config would silently
        diverge.  Restored state is re-shared against the master
        trace's name strings so the resumed run re-snapshots
        byte-identically to an uninterrupted one.
        """
        if self._policy is None:
            return None
        found = load_latest_checkpoint(self._policy.path)
        if found is None:
            return None
        path, ckpt = found
        if ckpt.meta.get("kind") != "churn":
            raise ValueError(f"{path} is not a churn checkpoint")
        if ckpt.meta.get("fingerprint") != self.fingerprint():
            raise ValueError(
                f"{path} was written by a different churn run (fingerprint mismatch)"
            )
        table = dict(zip(self._traces.names, self._traces.names, strict=True))
        manager_state = _canonicalize(pickle.loads(ckpt.sections["manager"]), table)
        engine_state = _canonicalize(pickle.loads(ckpt.sections["engine"]), table)
        self._manager.restore(manager_state)
        self._active = list(engine_state["active"])
        self._cursor = int(engine_state["cursor"])
        self._next_period = int(engine_state["next_period"])
        self._records = list(engine_state["records"])
        return self._next_period
