"""The trace-replay loop: periodic placement, v/f scaling, accounting.

Mirrors the paper's Setup-2 methodology: placement every ``t_period``
(1 hour) from predictions over the previous period, then replay of the
period's actual fine-grained samples against the chosen placement and
frequency plan.  Two v/f modes:

* **static** (Table II(a)) — each server keeps its placement-time
  frequency for the whole period;
* **dynamic** (Table II(b)) — every ``dvfs_interval_samples`` samples
  (12 × 5 s = 1 minute in the paper, chosen to avoid reliability-hurting
  oscillation) the frequency is re-chosen reactively from the previous
  interval's demand, for *every* approach.

The first period is pure warm-up (there is no history to predict from);
metrics cover periods ``1 .. P-1``.

The accounting is *fleet-vectorized*: each period's frequency plan,
violation ratios, residency counts and busy-fraction power are computed
for all active servers at once (interval-peak reshape + vectorized
ladder quantization, one boolean reduction per violation row, one
bincount for residency, one batched power evaluation).  The only
remaining per-server work is the energy accumulation, which preserves
the exact summation order of the per-server scalar loop this engine
replaced, so results stay bit-identical to it (the grouped ``reduceat``
demand gather below is shared with that loop verbatim — its accumulation
order is part of the contract; see ``tests/test_replay_vectorized.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.infrastructure.dvfs import UtilizationTrackingPolicy
from repro.infrastructure.server import ServerSpec
from repro.sim.approaches import ConsolidationApproach
from repro.sim.faults import FaultConfig, FaultSchedule, evacuate_fleet
from repro.sim.metrics import FrequencyResidency, violating_samples
from repro.sim.results import FaultStats, ReplayResult
from repro.traces.trace import TraceSet

__all__ = ["ReplayConfig", "replay"]


@dataclass(frozen=True)
class ReplayConfig:
    """Replay parameters (defaults reproduce the paper's Setup-2).

    ``oracle`` enables perfect reference prediction: before each
    placement, approaches exposing ``prime_oracle`` receive the *actual*
    upcoming per-VM reference utilizations.  No real system has this; it
    exists to separate placement quality from predictor error in the
    ablation experiments.

    ``faults`` enables fault injection (see :mod:`repro.sim.faults`):
    failed servers are masked out of the fleet, their VMs evacuated (one
    charged migration each), and stragglers run at degraded capacity.
    ``None`` (the default) disables the layer entirely — the replay is
    then bit-identical to an engine without it (a tested contract).
    """

    tperiod_s: float = 3600.0
    dvfs_mode: str = "static"
    dvfs_interval_samples: int = 12
    dvfs_headroom: float = 1.0
    oracle: bool = False
    faults: FaultConfig | None = None

    def __post_init__(self) -> None:
        if self.tperiod_s <= 0:
            raise ValueError("tperiod_s must be positive")
        if self.dvfs_mode not in ("static", "dynamic"):
            raise ValueError(f"dvfs_mode must be 'static' or 'dynamic', got {self.dvfs_mode!r}")
        if self.dvfs_interval_samples < 1:
            raise ValueError("dvfs_interval_samples must be positive")
        if self.dvfs_headroom < 1.0:
            raise ValueError("dvfs_headroom below 1.0 deliberately under-provisions")


def replay(
    fine_traces: TraceSet,
    spec: ServerSpec,
    num_servers: int,
    approach: ConsolidationApproach,
    config: ReplayConfig | None = None,
) -> ReplayResult:
    """Replay ``fine_traces`` under ``approach`` on a simulated fleet.

    Parameters
    ----------
    fine_traces:
        Fine-grained demand traces (e.g. 5-second samples) covering at
        least two placement periods.
    spec:
        The homogeneous server model (capacity, ladder, power).
    num_servers:
        Fleet size; the approach may not exceed it.
    approach:
        A :class:`~repro.sim.approaches.ConsolidationApproach`.
    config:
        Replay parameters; defaults are the paper's.
    """
    config = config or ReplayConfig()
    samples_per_period = int(round(config.tperiod_s / fine_traces.period_s))
    if samples_per_period < 1:
        raise ValueError("tperiod shorter than one sample")
    total_periods = fine_traces.num_samples // samples_per_period
    if total_periods < 2:
        raise ValueError(
            f"need at least 2 periods of {samples_per_period} samples, "
            f"trace has {fine_traces.num_samples}"
        )

    approach.reset()
    schedule = (
        FaultSchedule.build(config.faults, num_servers, total_periods)
        if config.faults is not None
        else None
    )
    evacuations = 0
    evacuation_energy_j = 0.0
    unserved_core_s = 0.0
    unplaced_vm_periods = 0
    policy = UtilizationTrackingPolicy(config.dvfs_interval_samples, config.dvfs_headroom)
    ladder = spec.ladder
    num_levels = ladder.num_levels
    # Per-level wattages, gathered once; ``power_table`` reproduces the
    # scalar lookups bit-for-bit.
    idle_w, busy_w = spec.power_model.power_table(ladder.levels_array)
    delta_w = busy_w - idle_w

    measured_periods = total_periods - 1
    violation = np.zeros((measured_periods, num_servers), dtype=float)
    residency = FrequencyResidency(num_servers, ladder.levels_ghz)
    energy_j = 0.0
    migrations = 0
    active_counts: list[int] = []
    placements: list = []
    infos: list = []
    previous_placement = None

    name_to_row = {name: i for i, name in enumerate(fine_traces.names)}
    matrix = fine_traces.matrix

    for period in range(1, total_periods):
        window = fine_traces.slice((period - 1) * samples_per_period, period * samples_per_period)
        if config.oracle and hasattr(approach, "prime_oracle"):
            upcoming = fine_traces.slice(
                period * samples_per_period, (period + 1) * samples_per_period
            )
            approach.prime_oracle(upcoming.references())
        decision = approach.decide(window)
        placement = decision.placement
        if placement.num_servers > num_servers:
            raise ValueError(
                f"{approach.name} used {placement.num_servers} servers, fleet has {num_servers}"
            )
        start = period * samples_per_period
        stop = start + samples_per_period
        frequencies = decision.frequencies
        if schedule is not None:
            # Fault mode: the approach stays fault-oblivious; the engine
            # re-places the failed servers' VMs after the decision (see
            # repro.sim.faults for the evacuation contract) and charges
            # one migration per evacuee.  VMs with no surviving host are
            # dropped for the period; their demand is accounted unserved.
            placement, frequencies, moved, unplaced = evacuate_fleet(
                placement,
                frequencies,
                schedule.failed_at(period),
                decision.predicted_references,
                spec.n_cores,
                num_servers,
                ladder,
                approach,
            )
            evacuations += len(moved)
            evacuation_energy_j += (
                config.faults.migration.energy_per_migration_j * len(moved)
            )
            if unplaced:
                rows = [name_to_row[vm] for vm in unplaced]
                unserved_core_s += float(matrix[rows, start:stop].sum()) * fine_traces.period_s
                unplaced_vm_periods += len(unplaced)
        placements.append(placement)
        infos.append(dict(decision.info))
        migrations += placement.migrations_from(previous_placement)
        previous_placement = placement
        active_counts.append(placement.num_active_servers)
        # Per-server demand in one pass: gather every VM's samples once,
        # grouped by server, and reduce each group with np.add.reduceat —
        # a single buffered reduction for the whole fleet.  The reduceat
        # output rows correspond directly to the (sorted) active servers.
        vm_rows = np.array([name_to_row[vm] for vm in placement.vm_ids], dtype=np.intp)
        server_rows = np.array(
            [placement.server_of(vm) for vm in placement.vm_ids], dtype=np.intp
        )
        if vm_rows.size:
            grouping = np.argsort(server_rows, kind="stable")
            sorted_servers = server_rows[grouping]
            group_starts = np.flatnonzero(np.r_[True, np.diff(sorted_servers) > 0])
            active = sorted_servers[group_starts]
            demand = np.add.reduceat(
                matrix[vm_rows[grouping], start:stop], group_starts, axis=0
            )
        else:
            active = np.empty(0, dtype=np.intp)
            demand = np.empty((0, samples_per_period), dtype=float)
        num_active = active.size

        # Suspended servers: one bulk inactive record for the whole fleet.
        inactive_mask = np.ones(num_servers, dtype=bool)
        inactive_mask[active] = False
        residency.record_matrix(
            np.zeros((0, num_levels), dtype=np.int64),
            server_indices=np.empty(0, dtype=np.intp),
            inactive_samples=samples_per_period,
            inactive_indices=np.flatnonzero(inactive_mask),
        )
        if num_active == 0:
            continue

        # Frequency plan for all active servers at once: placement-time
        # static levels, then (dynamic mode) interval peaks quantized
        # against the ladder in one batched reduction.  Everything runs
        # in ladder-index space; the static mode never materialises a
        # per-sample frequency matrix at all (one level per server).
        static_freqs = np.full(num_active, ladder.fmax_ghz, dtype=float)
        for row, server_index in enumerate(active):
            setting = frequencies.get(int(server_index))
            if setting is not None:
                static_freqs[row] = setting.freq_ghz
        static_idx = ladder.index_array(static_freqs)

        counts = np.zeros((num_active, num_levels), dtype=np.int64)
        if config.dvfs_mode == "static":
            level_idx = None
            capacity = (spec.n_cores * static_freqs / spec.fmax_ghz)[:, None]
            counts[np.arange(num_active), static_idx] = samples_per_period
            idle = idle_w[static_idx][:, None]
            delta = delta_w[static_idx][:, None]
        else:
            level_idx = policy.choose_series_indices(
                demand, ladder, spec.n_cores, static_idx
            )
            freqs = ladder.levels_array[level_idx]
            capacity = spec.n_cores * freqs / spec.fmax_ghz
            flat = (np.arange(num_active)[:, None] * num_levels + level_idx).ravel()
            counts.ravel()[:] = np.bincount(flat, minlength=num_active * num_levels)
            idle = idle_w[level_idx]
            delta = delta_w[level_idx]

        if schedule is not None:
            # Stragglers: a degraded server delivers only a fraction of
            # the capacity its chosen frequency implies for this period.
            # Accounting-level only — the v/f plan itself is unaware.
            scale = schedule.scale_at(period)[active]
            if scale.min() < 1.0:
                capacity = capacity * scale[:, None]

        # Violation accounting: one boolean reduction for the fleet.
        violation[period - 1, active] = violating_samples(demand, capacity).mean(axis=1)
        residency.record_matrix(counts, server_indices=active)

        # Busy-fraction power for the whole fleet in one batched
        # evaluation: ``idle_w + (busy_w - idle_w) * busy`` with the
        # per-level wattages gathered by ladder index.
        busy = np.minimum(demand / capacity, 1.0)
        power = idle + delta * busy
        row_sums = power.sum(axis=1)

        # Energy accumulation, preserving the scalar engine's exact
        # order: servers ascending, levels ascending, one masked pairwise
        # sum per (server, level).  A full-period level (always, in
        # static mode) reuses the precomputed row sum — same pairwise
        # reduction, no masking pass.
        for row in range(num_active):
            for level in range(num_levels):
                count = counts[row, level]
                if count == 0:
                    continue
                subtotal = (
                    row_sums[row]
                    if count == samples_per_period
                    else power[row, level_idx[row] == level].sum()
                )
                energy_j += float(subtotal) * fine_traces.period_s

    duration_s = measured_periods * samples_per_period * fine_traces.period_s
    fault_stats = None
    if schedule is not None:
        # Evacuation energy joins the fleet total only in fault mode, so
        # the fault-free accumulation stays bit-identical.
        energy_j += evacuation_energy_j
        fault_stats = FaultStats(
            evacuations=evacuations,
            migration_energy_j=evacuation_energy_j,
            unserved_demand_core_s=unserved_core_s,
            unplaced_vm_periods=unplaced_vm_periods,
            failed_server_periods=schedule.failed_server_periods(first_period=1),
        )
    return ReplayResult(
        approach_name=approach.name,
        period_s=config.tperiod_s,
        samples_per_period=samples_per_period,
        violation_ratio=violation,
        energy_j=energy_j,
        avg_power_w=energy_j / duration_s,
        residency=residency,
        placements=tuple(placements),
        migrations=migrations,
        mean_active_servers=float(np.mean(active_counts)),
        info_per_period=tuple(infos),
        faults=fault_stats,
    )
