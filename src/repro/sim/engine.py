"""The trace-replay loop: periodic placement, v/f scaling, accounting.

Mirrors the paper's Setup-2 methodology: placement every ``t_period``
(1 hour) from predictions over the previous period, then replay of the
period's actual fine-grained samples against the chosen placement and
frequency plan.  Two v/f modes:

* **static** (Table II(a)) — each server keeps its placement-time
  frequency for the whole period;
* **dynamic** (Table II(b)) — every ``dvfs_interval_samples`` samples
  (12 × 5 s = 1 minute in the paper, chosen to avoid reliability-hurting
  oscillation) the frequency is re-chosen reactively from the previous
  interval's demand, for *every* approach.

The first period is pure warm-up (there is no history to predict from);
metrics cover periods ``1 .. P-1``.

The accounting is *fleet-vectorized*: each period's frequency plan,
violation ratios, residency counts and busy-fraction power are computed
for all active servers at once (interval-peak reshape + vectorized
ladder quantization, one boolean reduction per violation row, one
bincount for residency, one batched power evaluation).  The only
remaining per-server work is the energy accumulation, which preserves
the exact summation order of the per-server scalar loop this engine
replaced, so results stay bit-identical to it (the grouped ``reduceat``
demand gather below is shared with that loop verbatim — its accumulation
order is part of the contract; see ``tests/test_replay_vectorized.py``).
"""

from __future__ import annotations

import hashlib
import math
import pickle
import sys
import warnings
from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from repro.infrastructure.dvfs import UtilizationTrackingPolicy
from repro.infrastructure.server import ServerSpec
from repro.sim import audit as _audit
from repro.sim.approaches import ConsolidationApproach
from repro.sim.checkpoint import (
    CHECKPOINT_LAYOUT,
    CheckpointPolicy,
    checkpoint_file,
    load_latest_checkpoint,
    prune_checkpoints,
    save_checkpoint,
)
from repro.sim.faults import FaultConfig, FaultSchedule, evacuate_fleet
from repro.sim.metrics import FrequencyResidency, violating_samples
from repro.sim.results import FaultStats, ReplayResult
from repro.traces.trace import TraceSet

__all__ = ["ReplayConfig", "replay"]


@dataclass(frozen=True)
class ReplayConfig:
    """Replay parameters (defaults reproduce the paper's Setup-2).

    ``oracle`` enables perfect reference prediction: before each
    placement, approaches exposing ``prime_oracle`` receive the *actual*
    upcoming per-VM reference utilizations.  No real system has this; it
    exists to separate placement quality from predictor error in the
    ablation experiments.

    ``faults`` enables fault injection (see :mod:`repro.sim.faults`):
    failed servers are masked out of the fleet, their VMs evacuated (one
    charged migration each), and stragglers run at degraded capacity.
    ``None`` (the default) disables the layer entirely — the replay is
    then bit-identical to an engine without it (a tested contract).

    ``checkpoint`` enables crash-safe mid-replay checkpoints (see
    :mod:`repro.sim.checkpoint`): the complete loop state is atomically
    persisted every ``checkpoint.every_periods`` completed periods, and
    ``replay(..., resume_from=...)`` restarts from the newest valid
    checkpoint byte-identically to an uninterrupted run.  ``None`` (the
    default) keeps the loop checkpoint-free and bit-identical to an
    engine without the feature.
    """

    tperiod_s: float = 3600.0
    dvfs_mode: str = "static"
    dvfs_interval_samples: int = 12
    dvfs_headroom: float = 1.0
    oracle: bool = False
    faults: FaultConfig | None = None
    checkpoint: CheckpointPolicy | None = None

    def __post_init__(self) -> None:
        # NaN-safe: ``NaN <= 0`` and ``NaN < 1`` are both False, so each
        # bound also requires finiteness (mirrors MigrationCostModel).
        if not math.isfinite(self.tperiod_s) or self.tperiod_s <= 0:
            raise ValueError("tperiod_s must be positive")
        if self.dvfs_mode not in ("static", "dynamic"):
            raise ValueError(f"dvfs_mode must be 'static' or 'dynamic', got {self.dvfs_mode!r}")
        if not math.isfinite(self.dvfs_interval_samples) or self.dvfs_interval_samples < 1:
            raise ValueError("dvfs_interval_samples must be positive")
        if not math.isfinite(self.dvfs_headroom) or self.dvfs_headroom < 1.0:
            raise ValueError("dvfs_headroom below 1.0 deliberately under-provisions")


def _replay_fingerprint(
    fine_traces: TraceSet,
    spec: ServerSpec,
    num_servers: int,
    approach: ConsolidationApproach,
    config: ReplayConfig,
) -> str:
    """Identity hash binding a checkpoint to one exact replay call.

    Covers everything the loop's trajectory depends on — config (minus
    the operational checkpoint policy), server spec, fleet size, trace
    identity and the approach's type/name — so a checkpoint can never be
    resumed into a *different* replay and silently diverge.
    """
    identity = (
        CHECKPOINT_LAYOUT,
        replace(config, checkpoint=None),
        spec,
        int(num_servers),
        fine_traces.names,
        tuple(fine_traces.matrix.shape),
        float(fine_traces.period_s),
        float(fine_traces.matrix.sum()),
        type(approach).__qualname__,
        str(getattr(approach, "name", "")),
    )
    blob = pickle.dumps(identity, protocol=pickle.HIGHEST_PROTOCOL)
    return hashlib.sha256(blob).hexdigest()


def _approach_payload(approach: ConsolidationApproach) -> dict:
    """Checkpointable capture of an approach's cross-period state.

    Approaches exposing ``snapshot()/restore()`` (all built-in ones)
    serialize just their mutable state; anything else is pickled whole —
    the universal fallback that also captures RNG bit-generator states
    of custom stochastic approaches.
    """
    descriptor = {
        "class": type(approach).__qualname__,
        "name": str(getattr(approach, "name", "")),
    }
    if hasattr(approach, "snapshot") and hasattr(approach, "restore"):
        return {**descriptor, "kind": "snapshot", "state": approach.snapshot()}
    return {**descriptor, "kind": "object", "object": approach}


def _restore_approach(
    approach: ConsolidationApproach, payload: dict
) -> ConsolidationApproach:
    if payload["class"] != type(approach).__qualname__ or payload["name"] != str(
        getattr(approach, "name", "")
    ):
        raise ValueError(
            f"checkpoint holds {payload['class']}/{payload['name']}, "
            f"resume was asked for {type(approach).__qualname__}"
        )
    if payload["kind"] == "snapshot":
        approach.restore(payload["state"])
        return approach
    return payload["object"]


def _canonicalize_restored(state: dict, names: tuple[str, ...]) -> dict:
    """Re-share string objects of an unpickled engine state.

    The repo's byte-identity contract compares results with
    ``pickle.dumps``, whose output depends on object *identity* sharing
    (the pickler memoizes repeated objects).  A live run's placements
    and info dicts all reference the trace set's own name strings and
    interned literal keys; an unpickled checkpoint carries equal-valued
    private copies.  Rewriting the restored containers against the
    canonical name objects (and ``sys.intern`` for literal keys) makes
    the resumed run's result share strings exactly like an uninterrupted
    run — a prerequisite for byte-identical resume, not a cosmetic step.
    """
    from repro.core.placement import Placement

    table = dict(zip(names, names, strict=True))
    rebuilt: dict[int, object] = {}

    def canon(obj):
        if isinstance(obj, str):
            canonical = table.get(obj)
            return canonical if canonical is not None else sys.intern(obj)
        if isinstance(obj, Placement):
            cached = rebuilt.get(id(obj))
            if cached is None:
                cached = Placement(
                    {canon(vm): server for vm, server in obj.assignment.items()},
                    obj.num_servers,
                )
                rebuilt[id(obj)] = cached
            return cached
        if isinstance(obj, dict):
            return {canon(key): canon(value) for key, value in obj.items()}
        if isinstance(obj, list):
            return [canon(item) for item in obj]
        if isinstance(obj, tuple):
            return tuple(canon(item) for item in obj)
        return obj

    out = dict(state)
    for key in ("placements", "previous_placement", "infos"):
        out[key] = canon(state[key])
    return out


def _load_resume_state(
    resume_from: str | Path,
    fingerprint: str,
    schedule: FaultSchedule | None,
) -> tuple[dict, dict, dict] | None:
    """The newest usable checkpoint state, or ``None`` for a cold start.

    Corruption, a fingerprint mismatch (checkpoint from a different
    replay) or a fault-schedule content mismatch are all *reported*
    (``RuntimeWarning``) and degrade to a cold start — a resume is never
    silently wrong.
    """
    found = load_latest_checkpoint(resume_from)
    if found is None:
        return None
    path, ckpt = found
    meta = ckpt.meta
    if meta.get("fingerprint") != fingerprint:
        warnings.warn(
            f"checkpoint {path} was written by a different replay "
            "(fingerprint mismatch); cold-starting",
            RuntimeWarning,
            stacklevel=3,
        )
        return None
    expected_hash = schedule.content_hash() if schedule is not None else None
    if meta.get("schedule_sha256") != expected_hash:
        warnings.warn(
            f"checkpoint {path} was written under a different fault "
            "schedule; cold-starting",
            RuntimeWarning,
            stacklevel=3,
        )
        return None
    try:
        engine_state = pickle.loads(ckpt.sections["engine"])
        approach_payload = pickle.loads(ckpt.sections["approach"])
    except Exception as error:  # noqa: BLE001 - any unpickling failure
        warnings.warn(
            f"checkpoint {path} failed to deserialize ({error}); cold-starting",
            RuntimeWarning,
            stacklevel=3,
        )
        return None
    return meta, engine_state, approach_payload


def replay(
    fine_traces: TraceSet,
    spec: ServerSpec,
    num_servers: int,
    approach: ConsolidationApproach,
    config: ReplayConfig | None = None,
    *,
    resume_from: str | Path | None = None,
) -> ReplayResult:
    """Replay ``fine_traces`` under ``approach`` on a simulated fleet.

    Parameters
    ----------
    fine_traces:
        Fine-grained demand traces (e.g. 5-second samples) covering at
        least two placement periods.
    spec:
        The homogeneous server model (capacity, ladder, power).
    num_servers:
        Fleet size; the approach may not exceed it.
    approach:
        A :class:`~repro.sim.approaches.ConsolidationApproach`.
    config:
        Replay parameters; defaults are the paper's.
    resume_from:
        A checkpoint directory (or single ``.ckpt`` file) to restart
        from.  The newest valid checkpoint whose identity fingerprint
        matches this call is restored and the loop continues mid-stream,
        byte-identically to an uninterrupted run; anything unusable
        (corrupt, truncated, version- or identity-mismatched) is
        reported with a ``RuntimeWarning`` and the replay cold-starts.
    """
    config = config or ReplayConfig()
    samples_per_period = int(round(config.tperiod_s / fine_traces.period_s))
    if samples_per_period < 1:
        raise ValueError("tperiod shorter than one sample")
    total_periods = fine_traces.num_samples // samples_per_period
    if total_periods < 2:
        raise ValueError(
            f"need at least 2 periods of {samples_per_period} samples, "
            f"trace has {fine_traces.num_samples}"
        )

    approach.reset()
    schedule = (
        FaultSchedule.build(config.faults, num_servers, total_periods)
        if config.faults is not None
        else None
    )
    evacuations = 0
    evacuation_energy_j = 0.0
    unserved_core_s = 0.0
    unplaced_vm_periods = 0
    policy = UtilizationTrackingPolicy(config.dvfs_interval_samples, config.dvfs_headroom)
    ladder = spec.ladder
    num_levels = ladder.num_levels
    # Per-level wattages, gathered once; ``power_table`` reproduces the
    # scalar lookups bit-for-bit.
    idle_w, busy_w = spec.power_model.power_table(ladder.levels_array)
    delta_w = busy_w - idle_w

    measured_periods = total_periods - 1
    violation = np.zeros((measured_periods, num_servers), dtype=float)
    residency = FrequencyResidency(num_servers, ladder.levels_ghz)
    energy_j = 0.0
    migrations = 0
    active_counts: list[int] = []
    placements: list = []
    infos: list = []
    previous_placement = None

    name_to_row = {name: i for i, name in enumerate(fine_traces.names)}
    matrix = fine_traces.matrix

    checkpoint_policy = config.checkpoint
    audit_events: list = []
    last_audit_energy_j = 0.0
    start_period = 1
    fingerprint = (
        _replay_fingerprint(fine_traces, spec, num_servers, approach, config)
        if checkpoint_policy is not None or resume_from is not None
        else None
    )
    if resume_from is not None:
        loaded = _load_resume_state(resume_from, fingerprint, schedule)
        if loaded is not None:
            meta, state, approach_payload = loaded
            try:
                restored_violation = np.array(state["violation"], dtype=float)
                if restored_violation.shape != violation.shape:
                    raise ValueError("checkpointed violation matrix shape mismatch")
                residency.restore(state["residency"])
                approach = _restore_approach(approach, approach_payload)
                state = _canonicalize_restored(state, fine_traces.names)
            except (KeyError, ValueError, TypeError) as error:
                warnings.warn(
                    f"checkpoint state rejected ({error}); cold-starting",
                    RuntimeWarning,
                    stacklevel=2,
                )
                approach.reset()
                residency = FrequencyResidency(num_servers, ladder.levels_ghz)
            else:
                violation = restored_violation
                start_period = int(meta["next_period"])
                evacuations = state["evacuations"]
                evacuation_energy_j = state["evacuation_energy_j"]
                unserved_core_s = state["unserved_core_s"]
                unplaced_vm_periods = state["unplaced_vm_periods"]
                energy_j = state["energy_j"]
                migrations = state["migrations"]
                active_counts = list(state["active_counts"])
                placements = list(state["placements"])
                infos = list(state["infos"])
                previous_placement = state["previous_placement"]
                audit_events = list(state["audit_events"])
                last_audit_energy_j = state["last_audit_energy_j"]

    for period in range(start_period, total_periods):
        window = fine_traces.slice((period - 1) * samples_per_period, period * samples_per_period)
        if config.oracle and hasattr(approach, "prime_oracle"):
            upcoming = fine_traces.slice(
                period * samples_per_period, (period + 1) * samples_per_period
            )
            approach.prime_oracle(upcoming.references())
        decision = approach.decide(window)
        placement = decision.placement
        if placement.num_servers > num_servers:
            raise ValueError(
                f"{approach.name} used {placement.num_servers} servers, fleet has {num_servers}"
            )
        start = period * samples_per_period
        stop = start + samples_per_period
        frequencies = decision.frequencies
        if schedule is not None:
            # Fault mode: the approach stays fault-oblivious; the engine
            # re-places the failed servers' VMs after the decision (see
            # repro.sim.faults for the evacuation contract) and charges
            # one migration per evacuee.  VMs with no surviving host are
            # dropped for the period; their demand is accounted unserved.
            placement, frequencies, moved, unplaced = evacuate_fleet(
                placement,
                frequencies,
                schedule.failed_at(period),
                decision.predicted_references,
                spec.n_cores,
                num_servers,
                ladder,
                approach,
            )
            evacuations += len(moved)
            evacuation_energy_j += (
                config.faults.migration.energy_per_migration_j * len(moved)
            )
            if unplaced:
                rows = [name_to_row[vm] for vm in unplaced]
                unserved_core_s += float(matrix[rows, start:stop].sum()) * fine_traces.period_s
                unplaced_vm_periods += len(unplaced)
        placements.append(placement)
        infos.append(dict(decision.info))
        migrations += placement.migrations_from(previous_placement)
        previous_placement = placement
        active_counts.append(placement.num_active_servers)
        # Per-server demand in one pass: gather every VM's samples once,
        # grouped by server, and reduce each group with np.add.reduceat —
        # a single buffered reduction for the whole fleet.  The reduceat
        # output rows correspond directly to the (sorted) active servers.
        vm_rows = np.array([name_to_row[vm] for vm in placement.vm_ids], dtype=np.intp)
        server_rows = np.array(
            [placement.server_of(vm) for vm in placement.vm_ids], dtype=np.intp
        )
        if vm_rows.size:
            grouping = np.argsort(server_rows, kind="stable")
            sorted_servers = server_rows[grouping]
            group_starts = np.flatnonzero(np.r_[True, np.diff(sorted_servers) > 0])
            active = sorted_servers[group_starts]
            demand = np.add.reduceat(
                matrix[vm_rows[grouping], start:stop], group_starts, axis=0
            )
        else:
            active = np.empty(0, dtype=np.intp)
            demand = np.empty((0, samples_per_period), dtype=float)
        num_active = active.size

        # Suspended servers: one bulk inactive record for the whole fleet.
        inactive_mask = np.ones(num_servers, dtype=bool)
        inactive_mask[active] = False
        residency.record_matrix(
            np.zeros((0, num_levels), dtype=np.int64),
            server_indices=np.empty(0, dtype=np.intp),
            inactive_samples=samples_per_period,
            inactive_indices=np.flatnonzero(inactive_mask),
        )
        if num_active:
            # Frequency plan for all active servers at once: placement-time
            # static levels, then (dynamic mode) interval peaks quantized
            # against the ladder in one batched reduction.  Everything runs
            # in ladder-index space; the static mode never materialises a
            # per-sample frequency matrix at all (one level per server).
            static_freqs = np.full(num_active, ladder.fmax_ghz, dtype=float)
            for row, server_index in enumerate(active):
                setting = frequencies.get(int(server_index))
                if setting is not None:
                    static_freqs[row] = setting.freq_ghz
            static_idx = ladder.index_array(static_freqs)

            counts = np.zeros((num_active, num_levels), dtype=np.int64)
            if config.dvfs_mode == "static":
                level_idx = None
                capacity = (spec.n_cores * static_freqs / spec.fmax_ghz)[:, None]
                counts[np.arange(num_active), static_idx] = samples_per_period
                idle = idle_w[static_idx][:, None]
                delta = delta_w[static_idx][:, None]
            else:
                level_idx = policy.choose_series_indices(
                    demand, ladder, spec.n_cores, static_idx
                )
                freqs = ladder.levels_array[level_idx]
                capacity = spec.n_cores * freqs / spec.fmax_ghz
                flat = (np.arange(num_active)[:, None] * num_levels + level_idx).ravel()
                counts.ravel()[:] = np.bincount(flat, minlength=num_active * num_levels)
                idle = idle_w[level_idx]
                delta = delta_w[level_idx]

            if schedule is not None:
                # Stragglers: a degraded server delivers only a fraction of
                # the capacity its chosen frequency implies for this period.
                # Accounting-level only — the v/f plan itself is unaware.
                scale = schedule.scale_at(period)[active]
                if scale.min() < 1.0:
                    capacity = capacity * scale[:, None]

            # Violation accounting: one boolean reduction for the fleet.
            violation[period - 1, active] = violating_samples(demand, capacity).mean(
                axis=1
            )
            residency.record_matrix(counts, server_indices=active)

            # Busy-fraction power for the whole fleet in one batched
            # evaluation: ``idle_w + (busy_w - idle_w) * busy`` with the
            # per-level wattages gathered by ladder index.
            busy = np.minimum(demand / capacity, 1.0)
            power = idle + delta * busy
            row_sums = power.sum(axis=1)

            # Energy accumulation, preserving the scalar engine's exact
            # order: servers ascending, levels ascending, one masked pairwise
            # sum per (server, level).  A full-period level (always, in
            # static mode) reuses the precomputed row sum — same pairwise
            # reduction, no masking pass.
            for row in range(num_active):
                for level in range(num_levels):
                    count = counts[row, level]
                    if count == 0:
                        continue
                    subtotal = (
                        row_sums[row]
                        if count == samples_per_period
                        else power[row, level_idx[row] == level].sum()
                    )
                    energy_j += float(subtotal) * fine_traces.period_s

        if checkpoint_policy is not None and period % checkpoint_policy.every_periods == 0:
            # Audit *before* persisting: a corrupted accumulator must
            # never be checkpointed as if it were healthy.  Degrade-mode
            # rebuilds mutate the approach, so the state captured below
            # is the post-repair state.
            if checkpoint_policy.audit:
                findings = _audit.audit_replay_state(
                    period=period,
                    samples_per_period=samples_per_period,
                    violation=violation,
                    residency=residency,
                    energy_j=energy_j,
                    previous_energy_j=last_audit_energy_j,
                    counters={
                        "migrations": migrations,
                        "evacuations": evacuations,
                        "unserved_core_s": unserved_core_s,
                        "unplaced_vm_periods": unplaced_vm_periods,
                    },
                    approach=approach,
                )
                audit_events.extend(
                    _audit.apply_policy(
                        findings, checkpoint_policy.on_violation, approach, period
                    )
                )
                last_audit_energy_j = energy_j
            state = {
                "evacuations": evacuations,
                "evacuation_energy_j": evacuation_energy_j,
                "unserved_core_s": unserved_core_s,
                "unplaced_vm_periods": unplaced_vm_periods,
                "violation": violation.copy(),
                "residency": residency.snapshot(),
                "energy_j": energy_j,
                "migrations": migrations,
                "active_counts": list(active_counts),
                "placements": list(placements),
                "infos": [dict(info) for info in infos],
                "previous_placement": previous_placement,
                "audit_events": list(audit_events),
                "last_audit_energy_j": last_audit_energy_j,
            }
            meta = {
                "next_period": period + 1,
                "total_periods": total_periods,
                "samples_per_period": samples_per_period,
                "num_servers": int(num_servers),
                "fingerprint": fingerprint,
                "schedule_sha256": (
                    schedule.content_hash() if schedule is not None else None
                ),
                "approach_class": type(approach).__qualname__,
            }
            save_checkpoint(
                checkpoint_file(checkpoint_policy.path, period),
                meta,
                {
                    "engine": pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL),
                    "approach": pickle.dumps(
                        _approach_payload(approach), protocol=pickle.HIGHEST_PROTOCOL
                    ),
                },
            )
            prune_checkpoints(checkpoint_policy.path, checkpoint_policy.keep)

    duration_s = measured_periods * samples_per_period * fine_traces.period_s
    fault_stats = None
    if schedule is not None:
        # Evacuation energy joins the fleet total only in fault mode, so
        # the fault-free accumulation stays bit-identical.
        energy_j += evacuation_energy_j
        fault_stats = FaultStats(
            evacuations=evacuations,
            migration_energy_j=evacuation_energy_j,
            unserved_demand_core_s=unserved_core_s,
            unplaced_vm_periods=unplaced_vm_periods,
            failed_server_periods=schedule.failed_server_periods(first_period=1),
        )
    return ReplayResult(
        approach_name=approach.name,
        period_s=config.tperiod_s,
        samples_per_period=samples_per_period,
        violation_ratio=violation,
        energy_j=energy_j,
        avg_power_w=energy_j / duration_s,
        residency=residency,
        placements=tuple(placements),
        migrations=migrations,
        mean_active_servers=float(np.mean(active_counts)),
        info_per_period=tuple(infos),
        faults=fault_stats,
        audit_events=tuple(audit_events),
    )
