"""The trace-replay loop: periodic placement, v/f scaling, accounting.

Mirrors the paper's Setup-2 methodology: placement every ``t_period``
(1 hour) from predictions over the previous period, then replay of the
period's actual fine-grained samples against the chosen placement and
frequency plan.  Two v/f modes:

* **static** (Table II(a)) — each server keeps its placement-time
  frequency for the whole period;
* **dynamic** (Table II(b)) — every ``dvfs_interval_samples`` samples
  (12 × 5 s = 1 minute in the paper, chosen to avoid reliability-hurting
  oscillation) the frequency is re-chosen reactively from the previous
  interval's demand, for *every* approach.

The first period is pure warm-up (there is no history to predict from);
metrics cover periods ``1 .. P-1``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.infrastructure.dvfs import UtilizationTrackingPolicy
from repro.infrastructure.server import ServerSpec
from repro.sim.approaches import ConsolidationApproach
from repro.sim.metrics import FrequencyResidency, period_violation_ratio
from repro.sim.results import ReplayResult
from repro.traces.trace import TraceSet

__all__ = ["ReplayConfig", "replay"]


@dataclass(frozen=True)
class ReplayConfig:
    """Replay parameters (defaults reproduce the paper's Setup-2).

    ``oracle`` enables perfect reference prediction: before each
    placement, approaches exposing ``prime_oracle`` receive the *actual*
    upcoming per-VM reference utilizations.  No real system has this; it
    exists to separate placement quality from predictor error in the
    ablation experiments.
    """

    tperiod_s: float = 3600.0
    dvfs_mode: str = "static"
    dvfs_interval_samples: int = 12
    dvfs_headroom: float = 1.0
    oracle: bool = False

    def __post_init__(self) -> None:
        if self.tperiod_s <= 0:
            raise ValueError("tperiod_s must be positive")
        if self.dvfs_mode not in ("static", "dynamic"):
            raise ValueError(f"dvfs_mode must be 'static' or 'dynamic', got {self.dvfs_mode!r}")
        if self.dvfs_interval_samples < 1:
            raise ValueError("dvfs_interval_samples must be positive")
        if self.dvfs_headroom < 1.0:
            raise ValueError("dvfs_headroom below 1.0 deliberately under-provisions")


def _period_frequencies(
    demand: np.ndarray,
    static_freq_ghz: float,
    spec: ServerSpec,
    config: ReplayConfig,
    policy: UtilizationTrackingPolicy,
) -> np.ndarray:
    """Per-sample frequency series for one server over one period."""
    samples = demand.size
    freqs = np.full(samples, static_freq_ghz, dtype=float)
    if config.dvfs_mode == "static":
        return freqs
    ladder = spec.ladder
    interval = config.dvfs_interval_samples
    for start in range(interval, samples, interval):
        window = demand[start - interval : start]
        chosen = policy.choose(window, ladder, spec.n_cores)
        freqs[start : start + interval] = chosen
    return freqs


def replay(
    fine_traces: TraceSet,
    spec: ServerSpec,
    num_servers: int,
    approach: ConsolidationApproach,
    config: ReplayConfig | None = None,
) -> ReplayResult:
    """Replay ``fine_traces`` under ``approach`` on a simulated fleet.

    Parameters
    ----------
    fine_traces:
        Fine-grained demand traces (e.g. 5-second samples) covering at
        least two placement periods.
    spec:
        The homogeneous server model (capacity, ladder, power).
    num_servers:
        Fleet size; the approach may not exceed it.
    approach:
        A :class:`~repro.sim.approaches.ConsolidationApproach`.
    config:
        Replay parameters; defaults are the paper's.
    """
    config = config or ReplayConfig()
    samples_per_period = int(round(config.tperiod_s / fine_traces.period_s))
    if samples_per_period < 1:
        raise ValueError("tperiod shorter than one sample")
    total_periods = fine_traces.num_samples // samples_per_period
    if total_periods < 2:
        raise ValueError(
            f"need at least 2 periods of {samples_per_period} samples, "
            f"trace has {fine_traces.num_samples}"
        )

    approach.reset()
    policy = UtilizationTrackingPolicy(config.dvfs_interval_samples, config.dvfs_headroom)
    ladder = spec.ladder

    measured_periods = total_periods - 1
    violation = np.zeros((measured_periods, num_servers), dtype=float)
    residency = FrequencyResidency(num_servers, ladder.levels_ghz)
    energy_j = 0.0
    migrations = 0
    active_counts: list[int] = []
    placements: list = []
    infos: list = []
    previous_placement = None

    name_to_row = {name: i for i, name in enumerate(fine_traces.names)}
    matrix = fine_traces.matrix

    for period in range(1, total_periods):
        window = fine_traces.slice((period - 1) * samples_per_period, period * samples_per_period)
        if config.oracle and hasattr(approach, "prime_oracle"):
            upcoming = fine_traces.slice(
                period * samples_per_period, (period + 1) * samples_per_period
            )
            approach.prime_oracle(upcoming.references())
        decision = approach.decide(window)
        placement = decision.placement
        if placement.num_servers > num_servers:
            raise ValueError(
                f"{approach.name} used {placement.num_servers} servers, fleet has {num_servers}"
            )
        placements.append(placement)
        infos.append(dict(decision.info))
        migrations += placement.migrations_from(previous_placement)
        previous_placement = placement
        active_counts.append(placement.num_active_servers)

        start = period * samples_per_period
        stop = start + samples_per_period
        by_server = placement.by_server()
        # Per-server demand in one pass: gather every VM's samples once,
        # grouped by server, and reduce each group with np.add.reduceat —
        # a single buffered reduction for the whole fleet instead of a
        # per-server Python row gather.
        server_demand = np.zeros((num_servers, samples_per_period), dtype=float)
        vm_rows = np.array([name_to_row[vm] for vm in placement.vm_ids], dtype=np.intp)
        server_rows = np.array(
            [placement.server_of(vm) for vm in placement.vm_ids], dtype=np.intp
        )
        if vm_rows.size:
            grouping = np.argsort(server_rows, kind="stable")
            sorted_servers = server_rows[grouping]
            group_starts = np.flatnonzero(np.r_[True, np.diff(sorted_servers) > 0])
            server_demand[sorted_servers[group_starts]] = np.add.reduceat(
                matrix[vm_rows[grouping], start:stop], group_starts, axis=0
            )
        for server_index in range(num_servers):
            members = by_server.get(server_index, ())
            if not members:
                residency.record(server_index, ladder.fmax_ghz, samples_per_period, active=False)
                continue
            demand = server_demand[server_index]
            setting = decision.frequencies.get(server_index)
            static_freq = setting.freq_ghz if setting is not None else ladder.fmax_ghz
            freqs = _period_frequencies(demand, static_freq, spec, config, policy)

            capacity = spec.n_cores * freqs / spec.fmax_ghz
            violation[period - 1, server_index] = period_violation_ratio(demand, capacity)

            for level in ladder.levels_ghz:
                mask = freqs == level
                count = int(mask.sum())
                if count == 0:
                    continue
                residency.record(server_index, level, count, active=True)
                busy = np.minimum(demand[mask] / (spec.n_cores * level / spec.fmax_ghz), 1.0)
                idle_w = spec.power_model.idle_power_w(level)
                busy_w = spec.power_model.busy_power_w(level)
                power = idle_w + (busy_w - idle_w) * busy
                energy_j += float(power.sum()) * fine_traces.period_s

    duration_s = measured_periods * samples_per_period * fine_traces.period_s
    return ReplayResult(
        approach_name=approach.name,
        period_s=config.tperiod_s,
        samples_per_period=samples_per_period,
        violation_ratio=violation,
        energy_j=energy_j,
        avg_power_w=energy_j / duration_s,
        residency=residency,
        placements=tuple(placements),
        migrations=migrations,
        mean_active_servers=float(np.mean(active_counts)),
        info_per_period=tuple(infos),
    )
