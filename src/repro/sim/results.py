"""Replay result container and cross-approach comparison helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence

import numpy as np

from repro.core.placement import Placement
from repro.sim.metrics import FrequencyResidency, max_violation_pct, mean_violation_pct

__all__ = ["FaultStats", "ReplayResult", "normalized_power", "comparison_rows"]


@dataclass(frozen=True)
class FaultStats:
    """Fault-mode accounting of one replay (``None`` when faults are off).

    Attributes
    ----------
    evacuations:
        VMs moved off failed servers (each charged one migration).
    migration_energy_j:
        Evacuation energy included in the result's ``energy_j``.
    unserved_demand_core_s:
        Demand (core-seconds) of VMs that had no surviving host.
    unplaced_vm_periods:
        (VM, period) cells that went unhosted.
    failed_server_periods:
        (server, period) cells the schedule marked down over the
        measured periods.
    """

    evacuations: int
    migration_energy_j: float
    unserved_demand_core_s: float
    unplaced_vm_periods: int
    failed_server_periods: int


@dataclass(frozen=True)
class ReplayResult:
    """Everything one replay of one approach produced.

    Attributes
    ----------
    approach_name:
        The approach's display name ("Proposed", "BFD", "PCP", ...).
    violation_ratio:
        ``(num_periods, num_servers)`` per-period violating-sample
        fractions.
    energy_j / avg_power_w:
        Fleet energy over the simulated horizon and its time average.
    residency:
        Per-server frequency residency (Fig 6's raw data).
    placements:
        The placement chosen for each simulated period.
    migrations:
        Total VM moves between consecutive placements.
    mean_active_servers:
        Average number of powered-on servers over the horizon.
    info_per_period:
        Approach-specific extras (e.g. PCP's cluster count per period).
    faults:
        Fault-mode accounting (see :class:`FaultStats`); ``None`` when
        the replay ran without fault injection.
    audit_events:
        Invariant violations the runtime auditor recorded at checkpoint
        boundaries (:class:`repro.sim.audit.AuditEvent`); empty unless a
        checkpoint policy with ``on_violation="warn"|"degrade"`` caught
        something.
    """

    approach_name: str
    period_s: float
    samples_per_period: int
    violation_ratio: np.ndarray
    energy_j: float
    avg_power_w: float
    residency: FrequencyResidency
    placements: tuple[Placement, ...]
    migrations: int
    mean_active_servers: float
    info_per_period: tuple[Mapping[str, object], ...] = field(default_factory=tuple)
    faults: FaultStats | None = None
    audit_events: tuple = field(default_factory=tuple)

    @property
    def num_periods(self) -> int:
        """Simulated placement periods."""
        return int(self.violation_ratio.shape[0])

    @property
    def max_violation_pct(self) -> float:
        """Table II's "maximum violations (%)" metric."""
        return max_violation_pct(self.violation_ratio)

    @property
    def mean_violation_pct(self) -> float:
        """Average violation percentage (secondary metric)."""
        return mean_violation_pct(self.violation_ratio)


def normalized_power(
    results: Sequence[ReplayResult], baseline_name: str = "BFD"
) -> dict[str, float]:
    """Average power of each approach normalized to the named baseline.

    Mirrors Table II's presentation ("normalized with respect to the power
    consumed by BFD").
    """
    by_name = {result.approach_name: result for result in results}
    if baseline_name not in by_name:
        raise KeyError(f"no result named {baseline_name!r} to normalize against")
    base = by_name[baseline_name].avg_power_w
    if base <= 0:
        raise ValueError("baseline consumed no power; cannot normalize")
    return {name: result.avg_power_w / base for name, result in by_name.items()}


def comparison_rows(
    results: Sequence[ReplayResult], baseline_name: str = "BFD"
) -> list[dict[str, object]]:
    """Table-II-shaped rows: approach, normalized power, max violation."""
    norm = normalized_power(results, baseline_name)
    rows = []
    for result in results:
        rows.append(
            {
                "approach": result.approach_name,
                "normalized_power": norm[result.approach_name],
                "max_violation_pct": result.max_violation_pct,
                "mean_violation_pct": result.mean_violation_pct,
                "avg_power_w": result.avg_power_w,
                "mean_active_servers": result.mean_active_servers,
                "migrations": result.migrations,
            }
        )
    return rows
