"""Command-line experiment runner.

Usage::

    repro-experiments list
    repro-experiments run fig5
    repro-experiments run all --fast
    repro-experiments export-traces population.csv
    python -m repro.cli run table2

Each experiment prints the same rows/series the paper reports (see
EXPERIMENTS.md for the paper-vs-measured record); ``export-traces``
writes the synthetic Setup-2 population to CSV so it can be inspected or
replaced with real monitoring data.
"""

from __future__ import annotations

import argparse
import inspect
import sys
from collections.abc import Sequence

from repro.experiments import EXPERIMENTS

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of the DATE 2013 paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_parser = sub.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument(
        "experiment",
        choices=[*sorted(EXPERIMENTS), "all"],
        help="experiment id, or 'all'",
    )
    run_parser.add_argument(
        "--fast",
        action="store_true",
        help="shrink workloads for a quick qualitative run",
    )
    run_parser.add_argument(
        "--journal",
        metavar="PATH",
        default=None,
        help="JSONL scenario journal for resumable sweeps "
        "(experiments that run through the scenario runner only)",
    )
    run_parser.add_argument(
        "--resume",
        action="store_true",
        help="skip scenarios already recorded in --journal (and resume "
        "partially replayed scenarios from --checkpoint-dir when set)",
    )
    run_parser.add_argument(
        "--checkpoint-every",
        type=int,
        metavar="K",
        default=None,
        help="write a crash-safe replay checkpoint every K placement "
        "periods (requires --checkpoint-dir)",
    )
    run_parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="directory for per-scenario checkpoint files "
        "(requires --checkpoint-every)",
    )
    run_parser.add_argument(
        "--allocator",
        choices=["exact", "sharded"],
        default=None,
        help="allocation backend for the proposed approach: 'exact' (dense "
        "Fig-2 fast path, the default) or 'sharded' (the approximate-but-"
        "gated two-level 100k-VM tier; experiments that build Setup-2 "
        "scenarios only)",
    )

    serve_parser = sub.add_parser(
        "serve",
        help="run the churn control loop (decide/admit/retire) against an event feed",
    )
    serve_parser.add_argument(
        "--events",
        metavar="PATH",
        default=None,
        help="scripted event feed: one event per line, either JSON "
        '{"time_s": ..., "action": "arrive"|"depart", "vm": ...} or '
        "'time_s,action,vm'; omit (without --stdin) to synthesize a "
        "deterministic feed from the traces",
    )
    serve_parser.add_argument(
        "--stdin",
        action="store_true",
        help="read the event feed from standard input instead of a file",
    )
    serve_parser.add_argument(
        "--num-vms", type=int, default=60, help="synthetic trace population size"
    )
    serve_parser.add_argument(
        "--periods", type=int, default=12, help="placement periods to run"
    )
    serve_parser.add_argument(
        "--samples-per-period",
        type=int,
        default=24,
        help="monitoring samples per placement period",
    )
    serve_parser.add_argument(
        "--seed", type=int, default=0, help="trace/event synthesis seed"
    )
    serve_parser.add_argument(
        "--allocator",
        choices=["exact", "sharded"],
        default="exact",
        help="allocation backend for the loop's decisions",
    )
    serve_parser.add_argument(
        "--report-every",
        type=int,
        metavar="K",
        default=1,
        help="print a decision/energy report line every K periods",
    )
    serve_parser.add_argument(
        "--checkpoint-every",
        type=int,
        metavar="K",
        default=None,
        help="write a crash-safe churn checkpoint every K periods "
        "(requires --checkpoint-dir)",
    )
    serve_parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="directory for churn checkpoint files",
    )
    serve_parser.add_argument(
        "--resume",
        action="store_true",
        help="resume from the newest checkpoint in --checkpoint-dir",
    )
    serve_parser.add_argument(
        "--journal",
        metavar="PATH",
        default=None,
        help="not supported by serve (scenario journals are a 'run' feature)",
    )

    export_parser = sub.add_parser(
        "export-traces", help="write the synthetic Setup-2 population to CSV"
    )
    export_parser.add_argument("path", help="output CSV path")
    export_parser.add_argument(
        "--fine",
        action="store_true",
        help="export the refined 5-second traces instead of the 5-minute ones",
    )
    export_parser.add_argument(
        "--seed", type=int, default=None, help="override the generator seed"
    )
    export_parser.add_argument(
        "--profile-layout",
        choices=["v1", "v2"],
        default="v1",
        help="coarse-generator RNG layout: v1 reproduces legacy populations "
        "byte-identically, v2 draws the whole population in batched blocks "
        "(recommended for large --num-vms)",
    )
    export_parser.add_argument(
        "--num-vms", type=int, default=None, help="override the population size"
    )
    export_parser.add_argument(
        "--num-clusters",
        type=int,
        default=None,
        help="override the service-cluster count (defaults to min(8, num VMs))",
    )
    return parser


def _export_traces(
    path: str,
    fine: bool,
    seed: int | None,
    profile_layout: str,
    num_vms: int | None,
    num_clusters: int | None,
) -> None:
    from repro.experiments.setup2 import Setup2Config, build_fine_traces
    from repro.traces.datacenter import DatacenterTraceConfig, generate_datacenter_traces
    from repro.traces.io import save_trace_set_csv

    overrides = {"profile_layout": profile_layout}
    if seed is not None:
        overrides["seed"] = seed
    if num_vms is not None:
        overrides["num_vms"] = num_vms
        # Keep small populations valid without forcing a second flag.
        overrides["num_clusters"] = min(8, num_vms)
    if num_clusters is not None:
        overrides["num_clusters"] = num_clusters
    try:
        traces_config = DatacenterTraceConfig(**overrides)
    except ValueError as error:
        raise SystemExit(f"repro-experiments export-traces: {error}") from error
    if fine:
        traces = build_fine_traces(Setup2Config(traces=traces_config))
    else:
        traces, _membership = generate_datacenter_traces(traces_config)
    save_trace_set_csv(traces, path)
    print(
        f"wrote {traces.num_traces} traces x {traces.num_samples} samples "
        f"({traces.period_s:.0f}s period) to {path}"
    )


def _parse_event_lines(lines, source: str):
    """Parse a scripted event feed (JSON-object or ``t,action,vm`` lines)."""
    import json

    from repro.sim.churn import ChurnEvent

    events = []
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            if line.startswith("{"):
                payload = json.loads(line)
                event = ChurnEvent(
                    float(payload["time_s"]), str(payload["action"]), str(payload["vm"])
                )
            else:
                time_s, action, vm = (field.strip() for field in line.split(",", 2))
                event = ChurnEvent(float(time_s), action, vm)
        except (ValueError, KeyError, TypeError) as error:
            raise SystemExit(
                f"repro-experiments serve: bad event on line {lineno} of {source}: {error}"
            ) from error
        events.append(event)
    return events


def _serve(args) -> int:
    """The ``serve`` mode: drive the churn loop with periodic reporting."""
    import signal

    if args.journal is not None:
        raise SystemExit(
            "repro-experiments serve: --journal is a 'run' flag (scenario "
            "journals); serve streams events, it does not journal scenarios"
        )
    if args.events is not None and args.stdin:
        raise SystemExit(
            "repro-experiments serve: --events and --stdin are mutually exclusive"
        )
    if args.resume and args.checkpoint_dir is None:
        raise SystemExit("repro-experiments serve: --resume requires --checkpoint-dir")
    if args.checkpoint_every is not None and args.checkpoint_dir is None:
        raise SystemExit(
            "repro-experiments serve: --checkpoint-every requires --checkpoint-dir"
        )
    if args.checkpoint_every is not None and args.checkpoint_every < 1:
        raise SystemExit("repro-experiments serve: --checkpoint-every must be positive")
    for name, value in (("--periods", args.periods), ("--num-vms", args.num_vms),
                        ("--samples-per-period", args.samples_per_period),
                        ("--report-every", args.report_every)):
        if value < 1:
            raise SystemExit(f"repro-experiments serve: {name} must be positive")

    from repro.core.manager import ManagerConfig, PowerManager
    from repro.sim.checkpoint import CheckpointPolicy
    from repro.sim.churn import ChurnEngine, synthesize_churn_events
    from repro.traces.datacenter import DatacenterTraceConfig, generate_datacenter_traces

    try:
        traces_config = DatacenterTraceConfig(
            num_vms=args.num_vms,
            num_clusters=min(8, args.num_vms),
            seed=args.seed,
            profile_layout="v2",
        )
    except ValueError as error:
        raise SystemExit(f"repro-experiments serve: {error}") from error
    traces, _membership = generate_datacenter_traces(traces_config)

    period_duration_s = args.samples_per_period * traces.period_s
    if args.stdin:
        events = _parse_event_lines(sys.stdin, "stdin")
    elif args.events is not None:
        try:
            with open(args.events, encoding="utf-8") as handle:
                events = _parse_event_lines(handle, args.events)
        except OSError as error:
            raise SystemExit(f"repro-experiments serve: cannot read --events: {error}")
    else:
        events = synthesize_churn_events(
            traces.names, args.periods, period_duration_s, seed=args.seed
        )
    unknown = sorted({event.vm for event in events} - set(traces.names))
    if unknown:
        raise SystemExit(
            f"repro-experiments serve: events name VMs absent from the "
            f"{args.num_vms}-VM trace population: {unknown[:5]!r}"
        )

    config = ManagerConfig(
        n_cores=8,
        freq_levels_ghz=(1.2, 1.8, 2.4),
        allocator=args.allocator,
    )
    policy = None
    if args.checkpoint_dir is not None:
        policy = CheckpointPolicy(
            args.checkpoint_dir, every_periods=args.checkpoint_every or 10
        )
    engine = ChurnEngine(
        PowerManager(config),
        traces,
        events,
        args.samples_per_period,
        checkpoint=policy,
    )
    if args.resume:
        resumed = engine.resume_latest()
        if resumed is None:
            print("serve: no usable checkpoint, cold start")
        else:
            print(f"serve: resumed at period {resumed}")

    interrupted = False

    def _on_sigterm(_signum, _frame):
        nonlocal interrupted
        interrupted = True

    previous = signal.signal(signal.SIGTERM, _on_sigterm)

    def report(record) -> None:
        if (record.period + 1) % args.report_every == 0:
            print(
                f"period {record.period:4d}: {record.active_vms:5d} active, "
                f"{record.servers:4d} servers, +{record.arrivals}/-{record.departures} "
                f"events, {record.decide_ms:8.2f} ms decide, "
                f"{record.energy_proxy_ghz:8.2f} GHz provisioned"
            )

    try:
        records = engine.run(
            args.periods, should_stop=lambda: interrupted, on_record=report
        )
    finally:
        signal.signal(signal.SIGTERM, previous)
    if interrupted:
        note = (
            " (checkpoint written)" if policy is not None and engine.next_period else ""
        )
        print(f"serve: interrupted at period {engine.next_period}{note}")
    if records:
        latency = engine.latency_ms()
        print(
            f"serve: {len(records)} periods, {len(engine.active_vms)} active, "
            f"decide p50 {latency['p50_ms']:.2f} ms / p99 {latency['p99_ms']:.2f} ms"
        )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for experiment_id in sorted(EXPERIMENTS):
            print(experiment_id)
        return 0

    if args.command == "serve":
        return _serve(args)

    if args.command == "export-traces":
        _export_traces(
            args.path,
            args.fine,
            args.seed,
            args.profile_layout,
            args.num_vms,
            args.num_clusters,
        )
        return 0

    extras = {
        "journal": args.journal,
        "resume": args.resume or None,
        "checkpoint_every": args.checkpoint_every,
        "checkpoint_dir": args.checkpoint_dir,
        "allocator": args.allocator,
    }
    requested = {key: value for key, value in extras.items() if value is not None}
    if "resume" in requested:
        requested["resume"] = True

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        accepted = inspect.signature(EXPERIMENTS[name]).parameters
        unsupported = sorted(set(requested) - set(accepted))
        if unsupported:
            if args.experiment == "all":
                # 'all' mixes runner-backed and plain experiments; only
                # forward the knobs where they exist.
                kwargs = {k: v for k, v in requested.items() if k in accepted}
            else:
                flags = ", ".join("--" + key.replace("_", "-") for key in unsupported)
                raise SystemExit(
                    f"repro-experiments run: experiment {name!r} does not support {flags}"
                )
        else:
            kwargs = dict(requested)
        result = EXPERIMENTS[name](fast=args.fast, **kwargs)
        print(result.render())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
