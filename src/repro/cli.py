"""Command-line experiment runner.

Usage::

    repro-experiments list
    repro-experiments run fig5
    repro-experiments run all --fast
    repro-experiments export-traces population.csv
    python -m repro.cli run table2

Each experiment prints the same rows/series the paper reports (see
EXPERIMENTS.md for the paper-vs-measured record); ``export-traces``
writes the synthetic Setup-2 population to CSV so it can be inspected or
replaced with real monitoring data.
"""

from __future__ import annotations

import argparse
import inspect
import sys
from collections.abc import Sequence

from repro.experiments import EXPERIMENTS

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of the DATE 2013 paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_parser = sub.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument(
        "experiment",
        choices=[*sorted(EXPERIMENTS), "all"],
        help="experiment id, or 'all'",
    )
    run_parser.add_argument(
        "--fast",
        action="store_true",
        help="shrink workloads for a quick qualitative run",
    )
    run_parser.add_argument(
        "--journal",
        metavar="PATH",
        default=None,
        help="JSONL scenario journal for resumable sweeps "
        "(experiments that run through the scenario runner only)",
    )
    run_parser.add_argument(
        "--resume",
        action="store_true",
        help="skip scenarios already recorded in --journal (and resume "
        "partially replayed scenarios from --checkpoint-dir when set)",
    )
    run_parser.add_argument(
        "--checkpoint-every",
        type=int,
        metavar="K",
        default=None,
        help="write a crash-safe replay checkpoint every K placement "
        "periods (requires --checkpoint-dir)",
    )
    run_parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="directory for per-scenario checkpoint files "
        "(requires --checkpoint-every)",
    )
    run_parser.add_argument(
        "--allocator",
        choices=["exact", "sharded"],
        default=None,
        help="allocation backend for the proposed approach: 'exact' (dense "
        "Fig-2 fast path, the default) or 'sharded' (the approximate-but-"
        "gated two-level 100k-VM tier; experiments that build Setup-2 "
        "scenarios only)",
    )

    export_parser = sub.add_parser(
        "export-traces", help="write the synthetic Setup-2 population to CSV"
    )
    export_parser.add_argument("path", help="output CSV path")
    export_parser.add_argument(
        "--fine",
        action="store_true",
        help="export the refined 5-second traces instead of the 5-minute ones",
    )
    export_parser.add_argument(
        "--seed", type=int, default=None, help="override the generator seed"
    )
    export_parser.add_argument(
        "--profile-layout",
        choices=["v1", "v2"],
        default="v1",
        help="coarse-generator RNG layout: v1 reproduces legacy populations "
        "byte-identically, v2 draws the whole population in batched blocks "
        "(recommended for large --num-vms)",
    )
    export_parser.add_argument(
        "--num-vms", type=int, default=None, help="override the population size"
    )
    export_parser.add_argument(
        "--num-clusters",
        type=int,
        default=None,
        help="override the service-cluster count (defaults to min(8, num VMs))",
    )
    return parser


def _export_traces(
    path: str,
    fine: bool,
    seed: int | None,
    profile_layout: str,
    num_vms: int | None,
    num_clusters: int | None,
) -> None:
    from repro.experiments.setup2 import Setup2Config, build_fine_traces
    from repro.traces.datacenter import DatacenterTraceConfig, generate_datacenter_traces
    from repro.traces.io import save_trace_set_csv

    overrides = {"profile_layout": profile_layout}
    if seed is not None:
        overrides["seed"] = seed
    if num_vms is not None:
        overrides["num_vms"] = num_vms
        # Keep small populations valid without forcing a second flag.
        overrides["num_clusters"] = min(8, num_vms)
    if num_clusters is not None:
        overrides["num_clusters"] = num_clusters
    try:
        traces_config = DatacenterTraceConfig(**overrides)
    except ValueError as error:
        raise SystemExit(f"repro-experiments export-traces: {error}") from error
    if fine:
        traces = build_fine_traces(Setup2Config(traces=traces_config))
    else:
        traces, _membership = generate_datacenter_traces(traces_config)
    save_trace_set_csv(traces, path)
    print(
        f"wrote {traces.num_traces} traces x {traces.num_samples} samples "
        f"({traces.period_s:.0f}s period) to {path}"
    )


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for experiment_id in sorted(EXPERIMENTS):
            print(experiment_id)
        return 0

    if args.command == "export-traces":
        _export_traces(
            args.path,
            args.fine,
            args.seed,
            args.profile_layout,
            args.num_vms,
            args.num_clusters,
        )
        return 0

    extras = {
        "journal": args.journal,
        "resume": args.resume or None,
        "checkpoint_every": args.checkpoint_every,
        "checkpoint_dir": args.checkpoint_dir,
        "allocator": args.allocator,
    }
    requested = {key: value for key, value in extras.items() if value is not None}
    if "resume" in requested:
        requested["resume"] = True

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        accepted = inspect.signature(EXPERIMENTS[name]).parameters
        unsupported = sorted(set(requested) - set(accepted))
        if unsupported:
            if args.experiment == "all":
                # 'all' mixes runner-backed and plain experiments; only
                # forward the knobs where they exist.
                kwargs = {k: v for k, v in requested.items() if k in accepted}
            else:
                flags = ", ".join("--" + key.replace("_", "-") for key in unsupported)
                raise SystemExit(
                    f"repro-experiments run: experiment {name!r} does not support {flags}"
                )
        else:
            kwargs = dict(requested)
        result = EXPERIMENTS[name](fast=args.fast, **kwargs)
        print(result.render())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
