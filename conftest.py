"""Repo-root pytest configuration.

Registers the ``--bench-json-dir`` option globally so it is honoured no
matter which directory is on the command line (options registered in a
non-root ``conftest.py`` are only recognised when that directory is an
initial argument).  The fixture consuming it lives in
``benchmarks/conftest.py``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

_REPO_ROOT = Path(__file__).resolve().parent


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--bench-json-dir",
        action="store",
        default=str(_REPO_ROOT),
        help="Directory that receives BENCH_<name>.json result files "
        "(default: the repository root).",
    )
