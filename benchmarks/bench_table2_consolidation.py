"""Table II — normalized power and QoS violations (static & dynamic v/f).

Paper rows:

    (a) static        power   max viol      (b) dynamic      power   max viol
    BFD               1.000   18.2%         BFD              1.000   20.3%
    PCP               0.999   18.2%         PCP              0.997   20.3%
    Proposed          0.863    2.6%         Proposed         0.958    3.1%

Plus: PCP collapses to a single envelope cluster in 22 of 24 periods.

Shape contract asserted below: the proposed scheme saves double-digit-
percent power statically while slashing violations by an order of
magnitude; PCP tracks BFD; the dynamic variant shrinks the power gap but
keeps the QoS gap.
"""

from __future__ import annotations

from repro.experiments import table2


def _row(rows, name):
    return next(r for r in rows if r["approach"] == name)


def test_table2_consolidation(benchmark, report):
    result = benchmark.pedantic(table2.run, rounds=1, iterations=1)
    report(result.render())

    static = result.data["static_rows"]
    dynamic = result.data["dynamic_rows"]

    # --- (a) static v/f -------------------------------------------------
    assert _row(static, "BFD")["normalized_power"] == 1.0
    # PCP ~= BFD (paper: 0.999 and identical violations).
    assert abs(_row(static, "PCP")["normalized_power"] - 1.0) < 0.02
    # Proposed saves double-digit-ish power (paper: 13.7%).
    assert _row(static, "Proposed")["normalized_power"] < 0.93
    # Violations: proposed at least 5x below both baselines (paper: 7x).
    bfd_viol = _row(static, "BFD")["max_violation_pct"]
    prop_viol = _row(static, "Proposed")["max_violation_pct"]
    assert bfd_viol > 8.0
    assert prop_viol < bfd_viol / 5.0
    assert _row(static, "PCP")["max_violation_pct"] > prop_viol

    # --- (b) dynamic v/f ------------------------------------------------
    static_gap = 1.0 - _row(static, "Proposed")["normalized_power"]
    dynamic_gap = 1.0 - _row(dynamic, "Proposed")["normalized_power"]
    # "the power savings become smaller compared to the static v/f scaling"
    assert dynamic_gap < static_gap
    # "the amount of the violations is unacceptably high in the other
    # approaches"
    dyn_bfd_viol = _row(dynamic, "BFD")["max_violation_pct"]
    dyn_prop_viol = _row(dynamic, "Proposed")["max_violation_pct"]
    assert dyn_bfd_viol > 8.0
    assert dyn_prop_viol < dyn_bfd_viol / 5.0

    # --- PCP degeneration -------------------------------------------------
    counts = result.data["pcp_cluster_counts"]
    single = result.data["pcp_single_cluster_periods"]
    # Paper: 22 of 24 periods collapse to one cluster; ours: most periods.
    assert single >= len(counts) * 0.6
