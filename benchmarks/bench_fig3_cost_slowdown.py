"""Fig 3 — Cost_server lower-bounds the achievable v/f slowdown.

Paper figure: scatter of the Eqn-2 weighted pairwise cost (X) against
the true multiplexing headroom (Y) with the points on or above Y = X,
justifying the Eqn-4 frequency discount as aggressive-yet-safe.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import fig3


def test_fig3_cost_vs_slowdown(benchmark, report):
    result = benchmark.pedantic(fig3.run, rounds=1, iterations=1)
    report(result.render())

    # The lower-bound relationship: essentially every sampled co-location
    # sits on or above the Y = X line.
    assert result.data["fraction_on_or_above"] >= 0.95
    # For two VMs Eqn 2 *is* the pairwise cost, so those points sit
    # exactly on the line.
    assert result.data["pair_identity_gap"] < 1e-9
    # Peak-reference costs live in [1, 2].
    costs = result.data["costs"]
    assert np.all(costs >= 1.0 - 1e-9) and np.all(costs <= 2.0 + 1e-9)
    # The margin (Y - X) is positive on average — the discount is safe
    # with room to spare for larger co-location groups.
    slowdowns = result.data["slowdowns"]
    assert float(np.mean(slowdowns - costs)) > 0.0
