"""Fig 1 — ISN utilization tracks the client population.

Paper series: two ISN CPU-utilization traces overlaid with the client
count, visibly synchronized and imbalanced.  The benchmark regenerates
the full-length series and asserts the synchronization quantitatively.
"""

from __future__ import annotations

from repro.experiments import fig1


def test_fig1_intra_cluster_correlation(benchmark, report):
    result = benchmark.pedantic(fig1.run, rounds=1, iterations=1)
    report(result.render())

    # Paper claim: "CPU utilizations of both VMs are highly synchronized
    # with the variation of the number of clients".
    assert result.data["corr_isn1_clients"] > 0.97
    assert result.data["corr_isn2_clients"] > 0.97
    # And the siblings co-move (intra-cluster correlation)...
    assert result.data["corr_isn1_isn2"] > 0.95
    # ...while remaining imbalanced ("loads between VMs in a cluster are
    # not perfectly balanced").
    assert result.data["mean_abs_imbalance_cores"] > 0.2
