"""Fig 4 — utilization traces of the three VM placements.

Paper figure: per-server normalized utilization of (a) Segregated,
(b) Shared-UnCorr (peak reaching ~0.88 because sibling peaks coincide)
and (c) Shared-Corr (peak evened out and lowered to ~0.6-0.75).
"""

from __future__ import annotations

from repro.experiments import fig4


def test_fig4_placement_utilization(benchmark, report):
    result = benchmark.pedantic(fig4.run, rounds=1, iterations=1)
    report(result.sections["peaks"])

    peaks = result.data["peaks"]
    # (a) the over-loaded segregated slices saturate their 4 cores.
    assert peaks["Segregated"] > 0.95
    # (b) plain sharing keeps a high coinciding peak (paper: 0.88).
    assert 0.8 < peaks["Shared-UnCorr"] < 0.95
    # (c) correlation-aware sharing lowers and evens the peak.
    assert peaks["Shared-Corr"] < peaks["Shared-UnCorr"] - 0.05
