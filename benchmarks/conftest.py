"""Benchmark-suite fixtures.

Every benchmark regenerates one of the paper's tables or figures at full
scale, prints the same rows/series the paper reports (run with ``-s`` to
see them), and asserts the qualitative claims — making the suite a
regression harness for the reproduction, not just a stopwatch.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def report(request):
    """Print a rendered experiment report under its benchmark's name."""

    def _print(text: str) -> None:
        header = f"\n===== {request.node.name} ====="
        print(header)
        print(text)

    return _print
