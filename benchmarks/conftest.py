"""Benchmark-suite fixtures.

Every benchmark regenerates one of the paper's tables or figures at full
scale, prints the same rows/series the paper reports (run with ``-s`` to
see them), and asserts the qualitative claims — making the suite a
regression harness for the reproduction, not just a stopwatch.

Benchmarks that measure *performance* (e.g. ``bench_scaling.py``) can
persist their numbers for trajectory tracking with the
:func:`bench_json_merge` fixture, which maintains ``BENCH_<name>.json``
files in the directory given by ``--bench-json-dir`` (repository root by
default, so the files land next to this suite and diff cleanly across
PRs).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

# --bench-json-dir itself is registered by the repo-root conftest.py so
# it is recognised regardless of the paths on the command line.


@pytest.fixture
def report(request):
    """Print a rendered experiment report under its benchmark's name."""

    def _print(text: str) -> None:
        header = f"\n===== {request.node.name} ====="
        print(header)
        print(text)

    return _print


@pytest.fixture
def bench_json_merge(request):
    """Merge one top-level key into ``BENCH_<name>.json``.

    Returns ``merge(name, key, payload) -> Path``; the payload must be
    JSON-serialisable.  Several benchmarks can contribute sections to
    one trajectory file (e.g. the scaling suite's kernel table and the
    replay gate both land in ``BENCH_scaling.json``): the file is
    created when absent and other keys are preserved.  Each PR's numbers
    are committed, so regressions show up in the diff.  Caveat of the
    preserve-other-keys semantics: when a section is renamed or retired,
    delete its stale key from the committed JSON in the same PR — the
    merge cannot know a leftover key is dead.
    """
    directory = Path(request.config.getoption("--bench-json-dir"))

    def _merge(name: str, key: str, payload: dict) -> Path:
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"BENCH_{name}.json"
        try:
            existing = json.loads(path.read_text()) if path.exists() else {}
        except (OSError, json.JSONDecodeError):
            # A truncated/corrupt trajectory file must not wedge the
            # suite — start it over, like the old overwrite semantics.
            existing = {}
        existing[key] = payload
        path.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")
        return path

    return _merge
