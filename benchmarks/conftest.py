"""Benchmark-suite fixtures.

Every benchmark regenerates one of the paper's tables or figures at full
scale, prints the same rows/series the paper reports (run with ``-s`` to
see them), and asserts the qualitative claims — making the suite a
regression harness for the reproduction, not just a stopwatch.

Benchmarks that measure *performance* (e.g. ``bench_scaling.py``) can
persist their numbers for trajectory tracking with the :func:`bench_json`
fixture, which writes ``BENCH_<name>.json`` files into the directory
given by ``--bench-json-dir`` (repository root by default, so the files
land next to this suite and diff cleanly across PRs).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

# --bench-json-dir itself is registered by the repo-root conftest.py so
# it is recognised regardless of the paths on the command line.


@pytest.fixture
def report(request):
    """Print a rendered experiment report under its benchmark's name."""

    def _print(text: str) -> None:
        header = f"\n===== {request.node.name} ====="
        print(header)
        print(text)

    return _print


@pytest.fixture
def bench_json(request):
    """Persist a benchmark's result payload as ``BENCH_<name>.json``.

    Returns a callable ``record(name, payload) -> Path``; the payload
    must be JSON-serialisable.  Used for trajectory tracking: each PR's
    numbers are committed, so regressions show up in the diff.
    """
    directory = Path(request.config.getoption("--bench-json-dir"))

    def _record(name: str, payload: dict) -> Path:
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"BENCH_{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return path

    return _record
