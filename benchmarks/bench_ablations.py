"""Ablations of the design choices DESIGN.md calls out.

Not a paper artifact — these quantify the constants the paper leaves
unspecified (TH_cost, alpha), the predictor choice, and the correlation
metric itself (Eqn 1 vs a Pearson-derived cost in the same allocator).
"""

from __future__ import annotations

from repro.experiments import ablations


def test_design_choice_ablations(benchmark, report):
    result = benchmark.pedantic(
        ablations.run, kwargs={"fast": True}, rounds=1, iterations=1
    )
    report(result.render())

    # The threshold sweep must not break feasibility anywhere.
    for th_result in result.data["th_results"].values():
        assert th_result.avg_power_w > 0

    # Max-over-history hedging cannot have *more* violations than
    # last-value (it provisions for the recent worst case).
    predictor_results = result.data["predictor_results"]
    assert (
        predictor_results["max-over-history(3)"].max_violation_pct
        <= predictor_results["last-value"].max_violation_pct + 1e-9
    )

    # Both metrics must produce working placements; the native Eqn-1
    # metric is the reproduction's default.
    assert result.data["native_metric"].avg_power_w > 0
    assert result.data["pearson_metric"].avg_power_w > 0
