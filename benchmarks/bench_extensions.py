"""Extension benches: QoS sweep, seed robustness, migration overhead.

Not paper artifacts — these exercise the extension axes DESIGN.md §5
lists: the reference-percentile QoS knob, the cross-seed stability of
the Table-II shape, the oracle-prediction bound, and the energy cost of
the consolidation churn itself.
"""

from __future__ import annotations

from repro.experiments import qos_sweep, robustness
from repro.experiments.setup2 import Setup2Config, build_fine_traces, run_setup2
from repro.sim.migration import MigrationCostModel


def test_qos_percentile_sweep(benchmark, report):
    result = benchmark.pedantic(qos_sweep.run, rounds=1, iterations=1)
    report(result.render())

    results = result.data["results"]
    # Softer references provision less and must not consume more power.
    assert results[90.0].avg_power_w <= results[100.0].avg_power_w + 1e-6
    assert result.data["power_saving_p90_vs_peak_pct"] >= 0.0
    # Peak provisioning uses at least as many servers as p90.
    assert results[100.0].mean_active_servers >= results[90.0].mean_active_servers - 1e-9


def test_seed_robustness_and_oracle(benchmark, report):
    result = benchmark.pedantic(robustness.run, rounds=1, iterations=1)
    report(result.render())

    # The power saving is stable across seeds (median >= 7%).
    assert result.data["median_power_ratio"] < 0.93
    assert max(result.data["power_ratios"]) < 1.0
    # With perfect prediction the proposed scheme's violations collapse:
    # the residual violations under last-value come from predictor error,
    # exactly as the paper argues.
    oracle = result.data["oracle"][True]
    assert oracle["Proposed"].max_violation_pct <= 0.5
    # And the power advantage persists under the oracle.
    assert (
        oracle["Proposed"].avg_power_w / oracle["BFD"].avg_power_w < 0.95
    )


def test_migration_overhead_negligible_at_hourly_period(benchmark, report):
    """The paper ignores migration cost; check that is defensible."""

    def run_once():
        config = Setup2Config().fast_variant()
        fine = build_fine_traces(config)
        outcome = run_setup2(config, dvfs_mode="static", fine_traces=fine)
        return outcome.result("Proposed")

    proposed = benchmark.pedantic(run_once, rounds=1, iterations=1)
    model = MigrationCostModel()
    overhead = model.overhead_fraction(proposed.migrations, proposed.energy_j)
    report(
        f"migrations={proposed.migrations}, "
        f"energy/move={model.energy_per_migration_j:.0f} J, "
        f"fleet energy={proposed.energy_j / 1e6:.1f} MJ, "
        f"overhead={overhead * 100:.3f}%"
    )
    # Hourly re-placement keeps migration energy well under 1% of fleet
    # energy — the implicit assumption behind the paper's t_period.
    assert overhead < 0.01
