"""Fig 5 — 90th-percentile response times of the three placements.

Paper bars (Cluster1 / Cluster2, seconds):

    Segregated            0.275 / 0.208
    Shared-UnCorr (2.1G)  0.155 / 0.153
    Shared-Corr  (2.1G)   0.143 / 0.128
    Shared-Corr  (1.9G)   0.160 / 0.150   (~12% power saving)

Shape contract: sharing cuts the p90 sharply (paper: -43.6%), mixing
anti-correlated clusters cuts it further (paper: -7.7%), and the reduced
frequency stays competitive with Shared-UnCorr at full frequency while
saving real power.
"""

from __future__ import annotations

from repro.experiments import fig5


def test_fig5_response_times(benchmark, report):
    result = benchmark.pedantic(fig5.run, rounds=1, iterations=1)
    report(result.render())

    p90 = result.data["p90"]
    for cluster_index in (0, 1):
        seg = p90["Segregated (2.1GHz)"][cluster_index]
        uncorr = p90["Shared-UnCorr (2.1GHz)"][cluster_index]
        corr = p90["Shared-Corr (2.1GHz)"][cluster_index]
        low = p90["Shared-Corr (1.9GHz)"][cluster_index]
        # Sharing wins big; correlation-awareness adds more.
        assert uncorr < seg * 0.8
        assert corr < uncorr
        # The frequency drop stays competitive with plain sharing at fmax.
        assert low < uncorr * 1.15

    # And converts the latency slack into real power savings.
    assert result.data["frequency_power_saving_pct"] > 5.0

    # Absolute magnitudes in the paper's regime (hundreds of ms).
    assert 0.05 < p90["Shared-UnCorr (2.1GHz)"][0] < 0.4
    assert 0.1 < p90["Segregated (2.1GHz)"][0] < 0.6
