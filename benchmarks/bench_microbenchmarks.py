"""Micro-benchmarks of the hot paths (true timing benchmarks).

The paper argues the Eqn-1 metric is cheap enough to update at every
sampling period; these benches put numbers on that claim and on the
placement heuristics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.bfd import best_fit_decreasing
from repro.core.allocation import CorrelationAwareAllocator
from repro.core.correlation import CostMatrix, StreamingCostMatrix
from repro.traces.trace import TraceSet, UtilizationTrace


@pytest.fixture(scope="module")
def window() -> TraceSet:
    rng = np.random.default_rng(0)
    return TraceSet(
        UtilizationTrace(rng.uniform(0.0, 4.0, size=720), 5.0, f"vm{i:02d}")
        for i in range(40)
    )


def test_cost_matrix_batch_build(benchmark, window):
    """Exact 40-VM cost matrix over one 720-sample window."""
    matrix = benchmark(CostMatrix.from_traces, window)
    assert matrix.size == 40


def test_streaming_cost_update(benchmark, window):
    """One O(N^2) streaming update — the per-sample online cost."""
    streaming = StreamingCostMatrix(window.names)
    vector = window.matrix[:, 0]
    benchmark(streaming.update, vector)
    assert streaming.count >= 1


def test_streaming_percentile_update(benchmark, window):
    """Per-sample cost in percentile mode (BatchPSquare over all pairs)."""
    from repro.traces.trace import ReferenceSpec

    streaming = StreamingCostMatrix(window.names, ReferenceSpec(90.0))
    vector = window.matrix[:, 0]
    for column in window.matrix.T[:6]:  # past the P-square warm-up buffer
        streaming.update(column)
    benchmark(streaming.update, vector)
    assert streaming.count >= 7


def test_correlation_aware_allocation(benchmark, window):
    """Full ALLOCATE phase for 40 VMs on 8-core servers (string path)."""
    matrix = CostMatrix.from_traces(window)
    refs = matrix.references()
    allocator = CorrelationAwareAllocator()
    placement = benchmark(
        allocator.allocate, list(window.names), refs, matrix.cost, 8
    )
    assert placement.num_vms == 40


def test_correlation_aware_allocation_fast_path(benchmark, window):
    """Same ALLOCATE instance through the indexed incremental fast path."""
    matrix = CostMatrix.from_traces(window)
    refs = matrix.references()
    allocator = CorrelationAwareAllocator()
    placement = benchmark(
        allocator.allocate,
        list(window.names),
        refs,
        None,
        8,
        cost_array=matrix.as_array(),
        name_index=matrix.name_index,
    )
    assert placement.num_vms == 40


def test_bfd_allocation(benchmark, window):
    """Best-fit-decreasing baseline packing for the same instance."""
    matrix = CostMatrix.from_traces(window)
    refs = matrix.references()
    placement = benchmark(best_fit_decreasing, list(window.names), refs, 8)
    assert placement.num_vms == 40


def test_pearson_end_of_window_recompute(benchmark, window):
    """Section IV-A's strawman: Pearson needs the whole buffered window.

    Compare against ``test_streaming_cost_update``: the Eqn-1 metric pays
    a tiny constant cost per sample, while the Pearson approach buffers
    the window and concentrates all of this work at the period boundary.
    """
    from repro.core.correlation import pearson_cost_matrix

    matrix = benchmark(pearson_cost_matrix, window)
    assert matrix.shape == (40, 40)
