"""Fig 6 — frequency-level distributions of BFD vs the proposed scheme.

Paper figure: histograms of the frequency levels used by Server1 and
Server3 under BFD and under the proposed solution; "the proposed
solution uses the lower frequency levels more frequently", which is
where the Table II(a) power gap comes from.
"""

from __future__ import annotations

from repro.experiments import fig6


def test_fig6_frequency_residency(benchmark, report):
    result = benchmark.pedantic(fig6.run, rounds=1, iterations=1)
    report(result.render())

    low = result.data["low_fractions"]
    for server, proposed_fraction in low["Proposed"].items():
        bfd_fraction = low["BFD"][server]
        # The proposed scheme spends strictly more of its active time at
        # the low level on every displayed server, by a wide margin.
        assert proposed_fraction > bfd_fraction + 0.3, (
            f"server {server}: proposed {proposed_fraction:.2f} "
            f"vs BFD {bfd_fraction:.2f}"
        )
