"""Fleet-size scaling of the vectorized kernels (build / update / allocate).

The paper's efficiency argument (Section IV-A) is that the Eqn-1 cost is
cheap enough to update "at each sampling period"; the ROADMAP demands
that hold at production fleet sizes, not the paper's 40 VMs.  This bench
times the three hot paths at N ∈ {40, 200, 1000}:

* ``build``   — exact :meth:`CostMatrix.from_traces` over a full window;
* ``update``  — one :meth:`StreamingCostMatrix.update` (the per-sample
  online cost, peak mode);
* ``allocate`` — the full ALLOCATE phase through the indexed fast path.

plus an end-to-end *replay gate*: a full trace replay (placement +
per-period accounting) of a 1000-VM / 125-server fleet through the
fleet-vectorized engine, in both DVFS modes, gated on per-period wall
time; a *synthesis gate*: coarse-to-fine population refinement at
N=1000 under the legacy (v1) and batched (v2) RNG stream layouts, gated
on the v2 speedup; a *datacenter-traces gate*: coarse population
generation at N=1000 under the legacy (v1) and batched (v2) profile
layouts, gated on the v2 speedup and the statistical equivalence of the
two layouts' populations; an *allocate-sweep gate*: repeated per-period
allocations through one allocator (reindex cache warm, a few cost rows
changing per period), gated on per-period wall time; and a
*horizon-percentile gate*: the percentile-mode rolling-horizon cost
fold (``horizon_mode="p2"``) at N=1000, gated on its warm per-period
cost relative to the bit-exact peak-mode fold and to the full rebuild
it replaces, plus its per-entry deviation from the exact matrix.

Results are persisted to ``BENCH_scaling.json`` (via the
``bench_json_merge`` fixture) so the numbers travel with the PR, and
the hard gates encode the acceptance bar: the 1000-VM streaming update
stays under 50 ms per sample, peak-mode streaming stays bit-exact
against the exact matrix at every size, the 1000-VM dynamic-mode replay
stays under the per-period budget, v2 synthesis beats v1 by the gated
factor, and the warm cross-period allocate stays under its budget.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.experiments import slo_frontier
from repro.core.allocation import CorrelationAwareAllocator
from repro.core.correlation import CostMatrix, StreamingCostMatrix
from repro.core.sharding import (
    ENERGY_DEVIATION_BOUND,
    ShardedAllocator,
    ShardingConfig,
    placement_energy_proxy,
)
from repro.core.manager import ManagerConfig, PowerManager
from repro.infrastructure.server import XEON_E5410
from repro.sim.approaches import BfdApproach
from repro.sim.churn import ChurnEngine, synthesize_churn_events
from repro.sim.engine import ReplayConfig, replay
from repro.traces.datacenter import DatacenterTraceConfig, generate_datacenter_traces
from repro.traces.synthesis import refine_trace_set
from repro.traces.trace import ReferenceSpec, TraceSet, UtilizationTrace

SIZES = (40, 200, 1000)
WINDOW_SAMPLES = 720
UPDATE_BUDGET_MS_AT_1000 = 50.0

REPLAY_VMS = 1000
REPLAY_SERVERS = 125
REPLAY_PERIODS = 3  # 1 warm-up + 2 measured
REPLAY_BUDGET_MS_PER_PERIOD = 30.0

FAULTY_REPLAY_CRASH_RATE = 0.01
FAULTY_REPLAY_MAX_RATIO = 2.0    # faulty replay vs plain replay
FAULTY_REPLAY_MASKED_MAX_RATIO = 1.05  # zero-rate schedule vs plain

CKPT_PERIODS = 21                # 1 warm-up + 20 measured
CKPT_SAMPLES_PER_PERIOD = 240    # 20-minute periods of 5 s samples
CKPT_EVERY = 10                  # checkpoint cadence (periods)
CKPT_MAX_RATIO = 1.10            # checkpointing-on vs plain replay
CKPT_DISABLED_MAX_RATIO = 1.02   # policy set but never firing vs plain

SYNTHESIS_VMS = 1000
SYNTHESIS_WINDOWS = 288          # 24 h of 5-minute monitoring samples
SYNTHESIS_FINE_PERIOD_S = 5.0
SYNTHESIS_SIGMA = 0.35
SYNTHESIS_MIN_SPEEDUP = 2.0

SWEEP_VMS = 1000
SWEEP_PERIODS = 4
SWEEP_BUDGET_MS_PER_PERIOD = 100.0

DCGEN_VMS = 1000
DCGEN_CLUSTERS = 8               # the Setup-2 service mix, at fleet scale
DCGEN_MIN_SPEEDUP = 3.0

HORIZON_VMS = 1000
HORIZON_WINDOW_SAMPLES = 240     # 20-minute windows of 5 s samples
HORIZON_DEPTH = 3                # the approaches' default horizon_periods
HORIZON_PERCENTILE = 90.0
# Warm per-period percentile fold vs the bit-exact peak-mode fold on the
# same geometry (the ~2x ROADMAP target; ~3.0x measured on this box —
# the pair-sum sort costs what the peak pays for its max reduction plus
# the marker fold) and vs the full horizon rebuild it replaces.
HORIZON_P2_MAX_RATIO_VS_PEAK = 3.5
HORIZON_P2_MIN_SPEEDUP_VS_REBUILD = 2.5
HORIZON_P2_MAX_REL_DEVIATION = 0.10

SHARDED_SMALL_VMS = 2000
SHARDED_SMALL_CLUSTERS = 32
SHARDED_SMALL_SHARDS = 8
SHARDED_MIN_SPEEDUP = 1.5        # sharded vs exact allocate at N=2000
SHARDED_LARGE_VMS = 20_000       # end-to-end run on every push
SHARDED_LARGE_BUDGET_S = 60.0    # ~3.7 s measured on the reference box
SHARDED_LARGE_RSS_MB = 1024.0    # ~263 MB measured
SHARDED_DEEP_VMS = 100_000       # weekly deep smoke (REPRO_SHARDED_DEEP=1)
SHARDED_DEEP_BUDGET_S = 360.0    # ~96 s measured on the reference box
SHARDED_DEEP_RSS_MB = 4096.0     # ~1.1 GB measured
SHARDED_DEEP_ENV = "REPRO_SHARDED_DEEP"

CHURN_VMS = 10_000               # sustained-churn gate population
CHURN_PERIODS = 6                # 1 cold + 5 measured
CHURN_SAMPLES_PER_PERIOD = 12
CHURN_EVENTS_PER_PERIOD = 32
# Warm-period tail-latency stability: p99/p50 over the post-cold
# periods.  Dimensionless, so compare_bench gates it across boxes; the
# membership layer's whole point is that churn deltas do not trigger
# rebuild-sized spikes, so warm periods should cluster tightly
# (~1.1x measured; generous headroom for noisy CI neighbours).
CHURN_LATENCY_RATIO_MAX = 3.0


def _fleet(n: int) -> TraceSet:
    rng = np.random.default_rng(n)
    return TraceSet(
        UtilizationTrace(rng.uniform(0.0, 4.0, size=WINDOW_SAMPLES), 5.0, f"vm{i:04d}")
        for i in range(n)
    )


def _time_ms(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best * 1e3


def test_scaling_suite(report, bench_json_merge):
    results: dict[str, dict[str, float]] = {}
    for n in SIZES:
        fleet = _fleet(n)
        repeats = 3 if n >= 1000 else 5

        build_ms = _time_ms(lambda: CostMatrix.from_traces(fleet), repeats)
        matrix = CostMatrix.from_traces(fleet)

        streaming = StreamingCostMatrix(fleet.names)
        vector = fleet.matrix[:, 0]
        streaming.update(vector)  # warm the arrays
        update_ms = _time_ms(lambda: streaming.update(vector), max(repeats, 10))

        refs = matrix.references()
        allocator = CorrelationAwareAllocator()
        allocate_ms = _time_ms(
            lambda: allocator.allocate(
                list(fleet.names),
                refs,
                None,
                8,
                cost_array=matrix.as_array(),
                name_index=matrix.name_index,
            ),
            repeats,
        )

        # Bit-exactness gate: fold the whole window and compare against
        # the exact matrix (a running maximum is lossless).
        streaming.reset()
        for column in fleet.matrix.T:
            streaming.update(column)
        assert np.array_equal(streaming.as_array(), matrix.as_array()), (
            f"peak-mode streaming diverged from the exact matrix at N={n}"
        )

        results[str(n)] = {
            "build_ms": round(build_ms, 3),
            "update_ms": round(update_ms, 3),
            "allocate_ms": round(allocate_ms, 3),
        }

    assert results["1000"]["update_ms"] < UPDATE_BUDGET_MS_AT_1000, (
        f"1000-VM streaming update took {results['1000']['update_ms']} ms, "
        f"budget is {UPDATE_BUDGET_MS_AT_1000} ms"
    )

    payload = {
        "window_samples": WINDOW_SAMPLES,
        "n_cores": 8,
        "sizes": results,
    }
    path = bench_json_merge("scaling", "kernels", payload)
    lines = [f"{'N':>6} {'build ms':>10} {'update ms':>10} {'allocate ms':>12}"]
    for n in SIZES:
        row = results[str(n)]
        lines.append(
            f"{n:>6} {row['build_ms']:>10.3f} {row['update_ms']:>10.3f} "
            f"{row['allocate_ms']:>12.3f}"
        )
    lines.append(f"persisted to {path}")
    report("\n".join(lines))


def test_replay_gate(report, bench_json_merge):
    """End-to-end replay accounting for a 1000-VM / 125-server fleet.

    The whole pipeline behind every experiment — placement each period,
    frequency planning, violation / residency / energy accounting —
    must stay in interactive territory at production scale.  The
    fleet-vectorized engine turns the old O(servers x intervals) Python
    loop into a handful of kernels; this gate pins that down to a
    per-period wall-clock budget (the pre-vectorization engine missed it
    roughly 2x in dynamic mode).
    """
    rng = np.random.default_rng(REPLAY_VMS)
    matrix = rng.uniform(
        0.05, 0.85, size=(REPLAY_VMS, REPLAY_PERIODS * WINDOW_SAMPLES)
    )
    traces = TraceSet.from_matrix(
        matrix, [f"vm{i:04d}" for i in range(REPLAY_VMS)], 5.0
    )
    measured_periods = REPLAY_PERIODS - 1

    results: dict[str, dict[str, float]] = {}
    for mode in ("static", "dynamic"):
        config = ReplayConfig(tperiod_s=3600.0, dvfs_mode=mode)

        def _run():
            approach = BfdApproach(
                XEON_E5410.n_cores,
                XEON_E5410.freq_levels_ghz,
                max_servers=REPLAY_SERVERS,
                default_reference=1.0,
            )
            return replay(traces, XEON_E5410, REPLAY_SERVERS, approach, config)

        result = _run()  # warm + correctness probe
        assert result.num_periods == measured_periods
        total = sum(result.residency.merged().values()) + sum(
            result.residency.inactive(i) for i in range(REPLAY_SERVERS)
        )
        assert total == measured_periods * WINDOW_SAMPLES * REPLAY_SERVERS

        replay_ms = _time_ms(_run, 3)
        results[mode] = {
            "replay_ms": round(replay_ms, 3),
            "per_period_ms": round(replay_ms / measured_periods, 3),
        }

    # Persist before gating: a budget miss must still ship the numbers
    # that diagnose it (CI uploads the JSON with `if: always()`).
    payload = {
        "vms": REPLAY_VMS,
        "servers": REPLAY_SERVERS,
        "samples_per_period": WINDOW_SAMPLES,
        "measured_periods": measured_periods,
        "budget_ms_per_period": REPLAY_BUDGET_MS_PER_PERIOD,
        "modes": results,
    }
    path = bench_json_merge("scaling", "replay", payload)
    lines = [f"{'mode':>8} {'replay ms':>10} {'per-period ms':>14}"]
    for mode in ("static", "dynamic"):
        row = results[mode]
        lines.append(f"{mode:>8} {row['replay_ms']:>10.3f} {row['per_period_ms']:>14.3f}")
    lines.append(f"persisted to {path}")
    report("\n".join(lines))

    per_period = results["dynamic"]["per_period_ms"]
    assert per_period < REPLAY_BUDGET_MS_PER_PERIOD, (
        f"1000-VM dynamic replay took {per_period} ms per period, "
        f"budget is {REPLAY_BUDGET_MS_PER_PERIOD} ms"
    )


def test_replay_faulty_gate(report, bench_json_merge):
    """Fault-injection overhead at 1000 VMs / 125 servers.

    Three replays of the same fleet: the plain engine (``faults=None``),
    a zero-rate schedule (all the masking machinery, no actual faults),
    and a 1% per-period crash rate with stragglers.  Two gates: the
    zero-rate run must stay within 5% of the plain one (the fault-free
    path pays almost nothing for the feature existing), and the faulty
    run within 2x (evacuations + capacity scaling must not dominate the
    replay).  Correctness probe: the zero-rate run's energy is
    byte-identical to the plain run's.
    """
    from repro.sim.faults import FaultConfig

    rng = np.random.default_rng(REPLAY_VMS + 1)
    matrix = rng.uniform(
        0.05, 0.85, size=(REPLAY_VMS, REPLAY_PERIODS * WINDOW_SAMPLES)
    )
    traces = TraceSet.from_matrix(
        matrix, [f"vm{i:04d}" for i in range(REPLAY_VMS)], 5.0
    )
    measured_periods = REPLAY_PERIODS - 1
    variants = {
        "plain": None,
        "masked": FaultConfig(crash_rate=0.0, degraded_rate=0.0),
        "faulty": FaultConfig(
            seed=2013,
            crash_rate=FAULTY_REPLAY_CRASH_RATE,
            degraded_rate=FAULTY_REPLAY_CRASH_RATE / 2,
        ),
    }

    results: dict[str, dict[str, float]] = {}
    probes = {}
    for label, faults in variants.items():
        config = ReplayConfig(tperiod_s=3600.0, dvfs_mode="static", faults=faults)

        def _run():
            approach = BfdApproach(
                XEON_E5410.n_cores,
                XEON_E5410.freq_levels_ghz,
                max_servers=REPLAY_SERVERS,
                default_reference=1.0,
            )
            return replay(traces, XEON_E5410, REPLAY_SERVERS, approach, config)

        probes[label] = _run()  # warm + correctness probe
        ms = _time_ms(_run, 3)
        results[label] = {
            "replay_ms": round(ms, 3),
            "per_period_ms": round(ms / measured_periods, 3),
        }

    # Correctness before timing gates: a masked run that changes the
    # numbers would make its overhead ratio meaningless.
    assert probes["masked"].energy_j == probes["plain"].energy_j
    assert probes["masked"].faults.evacuations == 0
    assert probes["faulty"].faults.evacuations > 0

    masked_ratio = results["masked"]["replay_ms"] / results["plain"]["replay_ms"]
    faulty_ratio = results["faulty"]["replay_ms"] / results["plain"]["replay_ms"]
    payload = {
        "vms": REPLAY_VMS,
        "servers": REPLAY_SERVERS,
        "crash_rate": FAULTY_REPLAY_CRASH_RATE,
        "measured_periods": measured_periods,
        "evacuations": probes["faulty"].faults.evacuations,
        "masked_vs_plain": round(masked_ratio, 3),
        "faulty_vs_plain": round(faulty_ratio, 3),
        "variants": results,
    }
    path = bench_json_merge("scaling", "replay_faulty", payload)
    lines = [f"{'variant':>8} {'replay ms':>10} {'per-period ms':>14}"]
    for label in variants:
        row = results[label]
        lines.append(
            f"{label:>8} {row['replay_ms']:>10.3f} {row['per_period_ms']:>14.3f}"
        )
    lines.append(
        f"masked/plain {masked_ratio:.3f}  faulty/plain {faulty_ratio:.3f}"
    )
    lines.append(f"persisted to {path}")
    report("\n".join(lines))

    assert masked_ratio < FAULTY_REPLAY_MASKED_MAX_RATIO, (
        f"zero-rate fault masking cost {masked_ratio:.3f}x the plain replay, "
        f"budget is {FAULTY_REPLAY_MASKED_MAX_RATIO}x"
    )
    assert faulty_ratio < FAULTY_REPLAY_MAX_RATIO, (
        f"fault-mode replay cost {faulty_ratio:.3f}x the plain replay, "
        f"budget is {FAULTY_REPLAY_MAX_RATIO}x"
    )


def test_replay_checkpoint_gate(report, bench_json_merge, tmp_path):
    """Checkpointing overhead at 1000 VMs / 125 servers.

    Three replays of the same 20-period fleet: the plain engine
    (``checkpoint=None``), a policy that never fires (cadence beyond the
    horizon — the cost of the feature merely existing), and the real
    thing (a full state serialization + fsync'd atomic write every
    ``CKPT_EVERY`` periods, audit on).  Gates: the never-firing policy
    stays within 2% of plain, and live checkpointing within 10%.
    Correctness probes: all three results are byte-identical, and a
    resume from the last written checkpoint reproduces the plain result
    byte-identically.
    """
    import pickle

    from repro.sim.checkpoint import CheckpointPolicy, list_checkpoints

    rng = np.random.default_rng(REPLAY_VMS + 2)
    matrix = rng.uniform(
        0.05, 0.85, size=(REPLAY_VMS, CKPT_PERIODS * CKPT_SAMPLES_PER_PERIOD)
    )
    traces = TraceSet.from_matrix(
        matrix, [f"vm{i:04d}" for i in range(REPLAY_VMS)], 5.0
    )
    measured_periods = CKPT_PERIODS - 1
    ckpt_dir = tmp_path / "ckpts"
    variants = {
        "plain": None,
        "disabled": CheckpointPolicy(path=tmp_path / "never", every_periods=10_000),
        "checkpointed": CheckpointPolicy(path=ckpt_dir, every_periods=CKPT_EVERY),
    }

    def _make_run(policy):
        config = ReplayConfig(
            tperiod_s=CKPT_SAMPLES_PER_PERIOD * 5.0,
            dvfs_mode="static",
            checkpoint=policy,
        )

        def _run():
            approach = BfdApproach(
                XEON_E5410.n_cores,
                XEON_E5410.freq_levels_ghz,
                max_servers=REPLAY_SERVERS,
                default_reference=1.0,
            )
            return replay(traces, XEON_E5410, REPLAY_SERVERS, approach, config)

        return _run

    runners = {label: _make_run(policy) for label, policy in variants.items()}
    probes = {label: run() for label, run in runners.items()}  # warm + probe
    # The 2% disabled gate measures a near-zero overhead, so the timing
    # must survive host steal on a shared single-CPU box: run the three
    # variants back to back within each round (so a slow stretch taxes
    # the whole round, not one variant) and gate on the *paired* ratios
    # of the best round — one clean round out of seven is enough, where
    # ratios of independent per-variant bests need two lucky runs to
    # line up.
    best = dict.fromkeys(variants, float("inf"))
    disabled_ratio = checkpoint_ratio = float("inf")
    for _ in range(7):
        round_ms = {}
        for label, run in runners.items():
            start = time.perf_counter()
            run()
            round_ms[label] = time.perf_counter() - start
            best[label] = min(best[label], round_ms[label])
        disabled_ratio = min(disabled_ratio, round_ms["disabled"] / round_ms["plain"])
        checkpoint_ratio = min(
            checkpoint_ratio, round_ms["checkpointed"] / round_ms["plain"]
        )
    results: dict[str, dict[str, float]] = {
        label: {
            "replay_ms": round(ms * 1e3, 3),
            "per_period_ms": round(ms * 1e3 / measured_periods, 3),
        }
        for label, ms in best.items()
    }

    # Correctness before timing gates: results must be byte-identical
    # with the policy absent, idle, and firing — and a resume from the
    # last checkpoint must land on the same bytes.
    reference = pickle.dumps(probes["plain"])
    assert pickle.dumps(probes["disabled"]) == reference
    assert pickle.dumps(probes["checkpointed"]) == reference
    files = list_checkpoints(ckpt_dir)
    assert files, "checkpointed replay wrote no files"
    resumed = replay(
        traces,
        XEON_E5410,
        REPLAY_SERVERS,
        BfdApproach(
            XEON_E5410.n_cores,
            XEON_E5410.freq_levels_ghz,
            max_servers=REPLAY_SERVERS,
            default_reference=1.0,
        ),
        ReplayConfig(tperiod_s=CKPT_SAMPLES_PER_PERIOD * 5.0, dvfs_mode="static"),
        resume_from=files[0],
    )
    assert pickle.dumps(resumed) == reference, "resume diverged from the plain replay"

    payload = {
        "vms": REPLAY_VMS,
        "servers": REPLAY_SERVERS,
        "samples_per_period": CKPT_SAMPLES_PER_PERIOD,
        "measured_periods": measured_periods,
        "checkpoint_every": CKPT_EVERY,
        "checkpoints_written": len(files),
        "disabled_vs_plain": round(disabled_ratio, 3),
        "checkpoint_vs_plain": round(checkpoint_ratio, 3),
        "variants": results,
    }
    path = bench_json_merge("scaling", "replay_checkpoint", payload)
    lines = [f"{'variant':>13} {'replay ms':>10} {'per-period ms':>14}"]
    for label in variants:
        row = results[label]
        lines.append(
            f"{label:>13} {row['replay_ms']:>10.3f} {row['per_period_ms']:>14.3f}"
        )
    lines.append(
        f"disabled/plain {disabled_ratio:.3f}  checkpointed/plain {checkpoint_ratio:.3f}"
    )
    lines.append(f"persisted to {path}")
    report("\n".join(lines))

    assert disabled_ratio < CKPT_DISABLED_MAX_RATIO, (
        f"an idle checkpoint policy cost {disabled_ratio:.3f}x the plain replay, "
        f"budget is {CKPT_DISABLED_MAX_RATIO}x"
    )
    assert checkpoint_ratio < CKPT_MAX_RATIO, (
        f"checkpointing every {CKPT_EVERY} periods cost {checkpoint_ratio:.3f}x "
        f"the plain replay, budget is {CKPT_MAX_RATIO}x"
    )


def test_synthesis_gate(report, bench_json_merge):
    """Population refinement at N=1000: batched v2 layout vs legacy v1.

    The ROADMAP targeted ~10x from vectorizing `refine_trace_set`; in
    practice the legacy loop's cost is dominated by the very ziggurat +
    exp work the batched kernel must also do (the per-window Python
    overhead is only ~40% of v1), so the honest ceiling on this box is
    ~2.5-3x.  The gate pins that down: v2 must beat v1 by at least
    ``SYNTHESIS_MIN_SPEEDUP`` and stay seeded-deterministic.
    """
    rng = np.random.default_rng(SYNTHESIS_VMS)
    matrix = rng.uniform(0.05, 3.5, size=(SYNTHESIS_VMS, SYNTHESIS_WINDOWS))
    matrix.flags.writeable = False
    coarse = TraceSet.from_matrix(
        matrix, [f"vm{i:04d}" for i in range(SYNTHESIS_VMS)], 300.0
    )

    def _build(layout: str) -> TraceSet:
        return refine_trace_set(
            coarse,
            SYNTHESIS_FINE_PERIOD_S,
            sigma=SYNTHESIS_SIGMA,
            rng=np.random.default_rng(1),
            cap=4.0,
            stream_layout=layout,
        )

    v1_ms = _time_ms(lambda: _build("v1"), 3)
    v2_ms = _time_ms(lambda: _build("v2"), 3)
    speedup = v1_ms / v2_ms

    # Determinism probe: the same seed must reproduce the v2 population
    # exactly (the layout is a versioned contract, not an implementation
    # detail).
    assert np.array_equal(_build("v2").matrix, _build("v2").matrix)

    payload = {
        "vms": SYNTHESIS_VMS,
        "coarse_windows": SYNTHESIS_WINDOWS,
        "fine_period_s": SYNTHESIS_FINE_PERIOD_S,
        "sigma": SYNTHESIS_SIGMA,
        "v1_ms": round(v1_ms, 3),
        "v2_ms": round(v2_ms, 3),
        "speedup": round(speedup, 2),
        "min_speedup": SYNTHESIS_MIN_SPEEDUP,
    }
    path = bench_json_merge("scaling", "synthesis", payload)
    report(
        f"population build at N={SYNTHESIS_VMS}: v1 {v1_ms:.1f} ms, "
        f"v2 {v2_ms:.1f} ms ({speedup:.1f}x)\npersisted to {path}"
    )
    assert speedup >= SYNTHESIS_MIN_SPEEDUP, (
        f"v2 synthesis only {speedup:.2f}x faster than v1 at N={SYNTHESIS_VMS}, "
        f"gate is {SYNTHESIS_MIN_SPEEDUP}x"
    )


def test_datacenter_traces_gate(report, bench_json_merge):
    """Coarse population generation at N=1000: batched v2 layout vs v1.

    ``generate_datacenter_traces`` was the last per-VM Python kernel on
    the scenario critical path — under ``profile_layout="v1"`` it draws
    one profile after another to keep its legacy RNG contract, and at
    N=1000 that costs more than the ``refine_trace_set`` refinement it
    feeds.  The ``"v2"`` layout draws the whole population in batched
    blocks; this gate pins its speedup, v1's seeded determinism (true
    byte-identity against the pre-versioning generator is pinned by the
    transcribed reference in ``tests/test_datacenter_traces.py``), and
    the statistical equivalence of the two layouts' populations —
    matching mean utilization, peak-to-mean ratio, intra-cluster
    correlation structure, and identical membership maps.
    """
    from repro.traces.datacenter import DatacenterTraceConfig, generate_datacenter_traces

    def _config(layout: str) -> DatacenterTraceConfig:
        return DatacenterTraceConfig(
            num_vms=DCGEN_VMS, num_clusters=DCGEN_CLUSTERS, profile_layout=layout
        )

    v1_ms = _time_ms(lambda: generate_datacenter_traces(_config("v1")), 3)
    v2_ms = _time_ms(lambda: generate_datacenter_traces(_config("v2")), 3)
    speedup = v1_ms / v2_ms

    v1, membership_v1 = generate_datacenter_traces(_config("v1"))
    v2, membership_v2 = generate_datacenter_traces(_config("v2"))
    v1_again, _ = generate_datacenter_traces(_config("v1"))

    # v1 regression probe: the legacy layout stays seeded-deterministic
    # (its byte-level contract is equivalence-tested against the
    # transcribed legacy loop in the tier-1 suite).
    assert np.array_equal(v1.matrix, v1_again.matrix), "v1 layout lost determinism"
    assert membership_v1 == membership_v2, "membership map differs across layouts"

    def _stats(traces) -> dict[str, float]:
        matrix = traces.matrix
        z = matrix - matrix.mean(axis=1, keepdims=True)
        z /= np.linalg.norm(z, axis=1, keepdims=True)
        corr = z @ z.T
        clusters = np.arange(DCGEN_VMS) % DCGEN_CLUSTERS
        same = clusters[:, None] == clusters[None, :]
        off = ~np.eye(DCGEN_VMS, dtype=bool)
        return {
            "mean_utilization": float(matrix.mean()),
            "peak_to_mean": float((matrix.max(axis=1) / matrix.mean(axis=1)).mean()),
            "intra_cluster_corr": float(corr[same & off].mean()),
            "corr_gap": float(corr[same & off].mean() - corr[~same].mean()),
        }

    stats_v1, stats_v2 = _stats(v1), _stats(v2)
    # Statistical-equivalence gates: different RNG streams, same
    # population model — the evaluation-surface statistics must agree.
    assert stats_v2["mean_utilization"] == pytest.approx(
        stats_v1["mean_utilization"], rel=0.25
    ), "v2 mean utilization diverged from v1"
    assert stats_v2["peak_to_mean"] == pytest.approx(
        stats_v1["peak_to_mean"], rel=0.15
    ), "v2 peak-to-mean ratio diverged from v1"
    assert stats_v2["intra_cluster_corr"] == pytest.approx(
        stats_v1["intra_cluster_corr"], abs=0.1
    ), "v2 intra-cluster correlation diverged from v1"
    assert stats_v2["corr_gap"] > 0.5, "v2 lost the clustered-correlation structure"

    payload = {
        "vms": DCGEN_VMS,
        "clusters": DCGEN_CLUSTERS,
        "samples": _config("v1").num_samples,
        "v1_ms": round(v1_ms, 3),
        "v2_ms": round(v2_ms, 3),
        "speedup": round(speedup, 2),
        "min_speedup": DCGEN_MIN_SPEEDUP,
        "stats_v1": {k: round(val, 4) for k, val in stats_v1.items()},
        "stats_v2": {k: round(val, 4) for k, val in stats_v2.items()},
    }
    path = bench_json_merge("scaling", "datacenter_traces", payload)
    report(
        f"coarse population at N={DCGEN_VMS}: v1 {v1_ms:.1f} ms, "
        f"v2 {v2_ms:.1f} ms ({speedup:.1f}x); mean util "
        f"{stats_v1['mean_utilization']:.3f}/{stats_v2['mean_utilization']:.3f}, "
        f"peak-to-mean {stats_v1['peak_to_mean']:.2f}/{stats_v2['peak_to_mean']:.2f}, "
        f"intra-corr {stats_v1['intra_cluster_corr']:.3f}/"
        f"{stats_v2['intra_cluster_corr']:.3f}\npersisted to {path}"
    )
    assert speedup >= DCGEN_MIN_SPEEDUP, (
        f"v2 coarse generation only {speedup:.2f}x faster than v1 at "
        f"N={DCGEN_VMS}, gate is {DCGEN_MIN_SPEEDUP}x"
    )


def test_allocate_sweep_gate(report, bench_json_merge):
    """Warm cross-period ALLOCATE at N=1000 stays under the sweep budget.

    One allocator drives several consecutive periods over a cost matrix
    where only a few rows move per period — the streaming deployment
    shape.  This exercises the whole PR-3 sweep stack (per-bin cost
    caching, batched TH-level degeneration, reindex-cache row reuse) and
    pins the per-period wall clock; a cold first call is reported
    alongside for the cache-free reference.
    """
    rng = np.random.default_rng(SWEEP_VMS)
    fleet = _fleet(SWEEP_VMS)
    matrix = CostMatrix.from_traces(fleet)
    refs = matrix.references()
    names = list(fleet.names)
    array = matrix.as_array().copy()
    allocator = CorrelationAwareAllocator()

    def _allocate(active: CorrelationAwareAllocator):
        return active.allocate(
            names, refs, None, 8, cost_array=array, name_index=matrix.name_index
        )

    cold_ms = _time_ms(lambda: _allocate(CorrelationAwareAllocator()), 3)
    _allocate(allocator)  # warm the reindex cache

    warm_times = []
    for _ in range(SWEEP_PERIODS):
        # Perturb a handful of rows/columns symmetrically, like a peak
        # update touching a few VMs between periods.
        for i in rng.integers(0, SWEEP_VMS, size=5):
            array[i, :] *= 1.001
            array[:, i] = array[i, :]
            array[i, i] = 1.0
        start = time.perf_counter()
        warm = _allocate(allocator)
        warm_times.append((time.perf_counter() - start) * 1e3)
        # Reuse must never change the placement.
        cold = _allocate(CorrelationAwareAllocator())
        assert dict(warm.assignment) == dict(cold.assignment)

    warm_ms = min(warm_times)
    payload = {
        "vms": SWEEP_VMS,
        "periods": SWEEP_PERIODS,
        "cold_ms": round(cold_ms, 3),
        "warm_ms": round(warm_ms, 3),
        "budget_ms_per_period": SWEEP_BUDGET_MS_PER_PERIOD,
    }
    path = bench_json_merge("scaling", "allocate_sweep", payload)
    report(
        f"cross-period allocate at N={SWEEP_VMS}: cold {cold_ms:.1f} ms, "
        f"warm {warm_ms:.1f} ms per period\npersisted to {path}"
    )
    assert warm_ms < SWEEP_BUDGET_MS_PER_PERIOD, (
        f"warm 1000-VM allocate took {warm_ms:.1f} ms, "
        f"budget is {SWEEP_BUDGET_MS_PER_PERIOD} ms"
    )


def test_horizon_percentile_gate(report, bench_json_merge):
    """Percentile-mode rolling-horizon cost at N=1000: fold vs rebuild.

    ``qos_sweep``'s off-peak rows used to rebuild the full percentile
    joint matrix over the whole horizon every period (O(N²WH)); the
    ``"p2"`` mode folds cached per-window quantile marker states instead
    (O(N²W), like the peak-mode parts fold).  Three gates pin the deal:
    the warm per-period fold stays within
    ``HORIZON_P2_MAX_RATIO_VS_PEAK`` of the bit-exact peak fold on the
    same geometry, beats the exact rebuild by at least
    ``HORIZON_P2_MIN_SPEEDUP_VS_REBUILD``, and its cost matrix deviates
    from the exact rebuild's by at most
    ``HORIZON_P2_MAX_REL_DEVIATION`` per entry.
    """
    from repro.core.correlation import RollingCostHorizon
    from repro.traces.trace import ReferenceSpec, TraceSet

    rng = np.random.default_rng(HORIZON_VMS)
    names = [f"vm{i:04d}" for i in range(HORIZON_VMS)]

    def _window(period: int) -> TraceSet:
        # Mild diurnal-style level drift across periods: the folding
        # error is exercised, not just the stationary easy case.
        level = 1.0 + 0.2 * np.sin(period)
        matrix = rng.uniform(0.0, 4.0 * level, size=(HORIZON_VMS, HORIZON_WINDOW_SAMPLES))
        matrix.flags.writeable = False
        return TraceSet.from_matrix(matrix, names, 5.0)

    windows = [_window(period) for period in range(HORIZON_DEPTH + 2)]
    spec = ReferenceSpec(HORIZON_PERCENTILE)

    def _warm_per_period(tracker, repeats: int):
        for window in windows[:HORIZON_DEPTH]:
            tracker.push(window)
        best, last = float("inf"), None
        for window in windows[HORIZON_DEPTH : HORIZON_DEPTH + repeats]:
            start = time.perf_counter()
            last = tracker.push(window)
            best = min(best, time.perf_counter() - start)
        return best * 1e3, last

    peak_ms, _ = _warm_per_period(
        RollingCostHorizon(ReferenceSpec(), HORIZON_DEPTH), 2
    )
    p2_ms, p2_matrix = _warm_per_period(
        RollingCostHorizon(spec, HORIZON_DEPTH, "p2"), 2
    )
    # The rebuild is the expensive baseline being retired — time one
    # warm period only, then push once more so both trackers cover the
    # same trailing horizon for the deviation probe.
    exact = RollingCostHorizon(spec, HORIZON_DEPTH, "exact")
    for window in windows[: HORIZON_DEPTH]:
        exact.push(window)
    start = time.perf_counter()
    exact.push(windows[HORIZON_DEPTH])
    rebuild_ms = (time.perf_counter() - start) * 1e3
    exact_matrix = exact.push(windows[HORIZON_DEPTH + 1])

    deviation = float(
        np.abs(p2_matrix.as_array() / exact_matrix.as_array() - 1.0).max()
    )
    ratio = p2_ms / peak_ms
    speedup = rebuild_ms / p2_ms

    payload = {
        "vms": HORIZON_VMS,
        "window_samples": HORIZON_WINDOW_SAMPLES,
        "horizon_periods": HORIZON_DEPTH,
        "percentile": HORIZON_PERCENTILE,
        "peak_fold_ms": round(peak_ms, 3),
        "p2_fold_ms": round(p2_ms, 3),
        "rebuild_ms": round(rebuild_ms, 3),
        "ratio_vs_peak": round(ratio, 2),
        "speedup_vs_rebuild": round(speedup, 2),
        "max_rel_deviation": round(deviation, 4),
        "max_ratio_vs_peak": HORIZON_P2_MAX_RATIO_VS_PEAK,
        "min_speedup_vs_rebuild": HORIZON_P2_MIN_SPEEDUP_VS_REBUILD,
        "max_allowed_deviation": HORIZON_P2_MAX_REL_DEVIATION,
    }
    path = bench_json_merge("scaling", "horizon_percentile", payload)
    report(
        f"percentile horizon at N={HORIZON_VMS} (q={HORIZON_PERCENTILE:.0f}, "
        f"H={HORIZON_DEPTH}, W={HORIZON_WINDOW_SAMPLES}): peak fold {peak_ms:.0f} ms, "
        f"p2 fold {p2_ms:.0f} ms ({ratio:.2f}x peak), rebuild {rebuild_ms:.0f} ms "
        f"({speedup:.1f}x), max deviation {deviation:.4f}\npersisted to {path}"
    )
    assert ratio <= HORIZON_P2_MAX_RATIO_VS_PEAK, (
        f"p2 horizon fold is {ratio:.2f}x the peak fold, "
        f"gate is {HORIZON_P2_MAX_RATIO_VS_PEAK}x"
    )
    assert speedup >= HORIZON_P2_MIN_SPEEDUP_VS_REBUILD, (
        f"p2 horizon fold only {speedup:.2f}x faster than the exact rebuild, "
        f"gate is {HORIZON_P2_MIN_SPEEDUP_VS_REBUILD}x"
    )
    assert deviation <= HORIZON_P2_MAX_REL_DEVIATION, (
        f"p2 horizon cost matrix deviates {deviation:.4f} from the exact rebuild, "
        f"gate is {HORIZON_P2_MAX_REL_DEVIATION}"
    )


def test_percentile_streaming_scales(report):
    """Percentile mode (BatchPSquare over all pairs) stays online at N=200."""
    fleet = _fleet(200)
    streaming = StreamingCostMatrix(fleet.names, ReferenceSpec(90.0))
    vector = fleet.matrix[:, 0]
    for column in fleet.matrix.T[:6]:  # past the P-square warm-up buffer
        streaming.update(column)
    update_ms = _time_ms(lambda: streaming.update(vector), 10)
    report(f"N=200 percentile-mode streaming update: {update_ms:.3f} ms")
    assert update_ms < UPDATE_BUDGET_MS_AT_1000


def _clustered_population(num_vms: int, seed: int) -> TraceSet:
    """A correlation-clustered v2 population (the sharded tier's target)."""
    config = DatacenterTraceConfig(
        num_vms=num_vms,
        num_clusters=SHARDED_SMALL_CLUSTERS,
        duration_s=4 * 3600.0,
        period_s=300.0,
        seed=seed,
        profile_layout="v2",
    )
    window, _membership = generate_datacenter_traces(config)
    return window


# Child process for the end-to-end large-N run: a subprocess isolates
# both the wall clock and the peak-RSS high-water mark from whatever the
# rest of the bench session already allocated (``ru_maxrss`` can never
# be reset in-process).
_SHARDED_CHILD = """
import json, resource, sys, time
from repro.core.sharding import ShardedAllocator, ShardingConfig
from repro.traces.datacenter import DatacenterTraceConfig, generate_datacenter_traces
from repro.traces.trace import ReferenceSpec

n = int(sys.argv[1])
config = DatacenterTraceConfig(
    num_vms=n, num_clusters=64, duration_s=4 * 3600.0, period_s=300.0,
    seed=13, profile_layout="v2",
)
window, _membership = generate_datacenter_traces(config)
references = dict(window.references(ReferenceSpec()))
start = time.perf_counter()
allocator = ShardedAllocator(sharding=ShardingConfig())
placement = allocator.allocate(window, references, 8)
wall_s = time.perf_counter() - start
assert len(placement.assignment) == n, "sharded allocate dropped VMs"
# ru_maxrss is KiB on Linux (the CI and reference boxes).
print(json.dumps({
    "wall_s": wall_s,
    "peak_rss_mb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0,
    "servers": placement.num_servers,
    "shards": allocator.last_num_shards,
}))
"""


def _run_sharded_child(num_vms: int) -> dict:
    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [src_dir] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    result = subprocess.run(
        [sys.executable, "-c", _SHARDED_CHILD, str(num_vms)],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(result.stdout.splitlines()[-1])


def test_allocate_sharded_gate(report, bench_json_merge):
    """The two-level sharded tier: bounded deviation, end-to-end scale.

    Three gates pin the approximate-but-gated contract of
    :mod:`repro.core.sharding`:

    * at N=2000 the sharded placement's Eqn-4 energy proxy (scored on
      the *exact* dense cost matrix) stays within
      ``ENERGY_DEVIATION_BOUND`` of the exact allocator's, while beating
      it by at least ``SHARDED_MIN_SPEEDUP`` on wall clock;
    * ``num_shards=1`` degenerates to the exact allocator bit-exactly
      (same assignment, same fleet size) — the approximation is the
      sharding, never the per-shard solver;
    * an end-to-end N=20k placement (N=100k under ``REPRO_SHARDED_DEEP=1``,
      the weekly deep smoke) finishes on one box inside a wall-clock and
      peak-RSS budget, measured in a subprocess so the rest of the bench
      session cannot pollute the high-water mark.
    """
    n_cores = XEON_E5410.n_cores
    levels = XEON_E5410.freq_levels_ghz
    window = _clustered_population(SHARDED_SMALL_VMS, seed=11)
    references = dict(window.references(ReferenceSpec()))
    names = list(window.names)

    start = time.perf_counter()
    matrix = CostMatrix.from_traces(window)
    exact = CorrelationAwareAllocator().allocate(
        names,
        references,
        matrix.cost,
        n_cores,
        None,
        cost_array=matrix.as_array(),
        name_index=matrix.name_index,
    )
    exact_ms = (time.perf_counter() - start) * 1e3

    start = time.perf_counter()
    sharded_allocator = ShardedAllocator(
        sharding=ShardingConfig(num_shards=SHARDED_SMALL_SHARDS)
    )
    sharded = sharded_allocator.allocate(window, references, n_cores)
    sharded_ms = (time.perf_counter() - start) * 1e3
    speedup = exact_ms / sharded_ms

    assert len(sharded.assignment) == SHARDED_SMALL_VMS, "sharded allocate dropped VMs"
    assert sharded_allocator.last_num_shards == SHARDED_SMALL_SHARDS

    # Deviation is scored on the exact matrix: both placements pay the
    # same (exact) Eqn-4 bill, only the packing decisions differ.
    exact_proxy = placement_energy_proxy(exact, references, matrix.cost, levels, n_cores)
    sharded_proxy = placement_energy_proxy(sharded, references, matrix.cost, levels, n_cores)
    proxy_ratio = sharded_proxy / exact_proxy
    deviation = abs(proxy_ratio - 1.0)

    # Degenerate single shard: bit-identical to the exact allocator.
    single = ShardedAllocator(sharding=ShardingConfig(num_shards=1)).allocate(
        window, references, n_cores
    )
    assert dict(single.assignment) == dict(exact.assignment), (
        "num_shards=1 must reproduce the exact allocator's assignment bit-exactly"
    )
    assert single.num_servers == exact.num_servers

    deep = os.environ.get(SHARDED_DEEP_ENV, "") not in ("", "0")
    large = _run_sharded_child(SHARDED_LARGE_VMS)
    payload = {
        "vms": SHARDED_SMALL_VMS,
        "shards": SHARDED_SMALL_SHARDS,
        "exact_ms": round(exact_ms, 3),
        "sharded_ms": round(sharded_ms, 3),
        "speedup_vs_exact": round(speedup, 3),
        "proxy_ratio": round(proxy_ratio, 5),
        "proxy_deviation": round(deviation, 5),
        "deviation_bound": ENERGY_DEVIATION_BOUND,
        "min_speedup": SHARDED_MIN_SPEEDUP,
        "large": {
            "vms": SHARDED_LARGE_VMS,
            "wall_s": round(large["wall_s"], 3),
            "peak_rss_mb": round(large["peak_rss_mb"], 1),
            "servers": large["servers"],
            "shards": large["shards"],
            "budget_s": SHARDED_LARGE_BUDGET_S,
            "rss_budget_mb": SHARDED_LARGE_RSS_MB,
        },
    }
    if deep:
        big = _run_sharded_child(SHARDED_DEEP_VMS)
        payload["deep"] = {
            "vms": SHARDED_DEEP_VMS,
            "wall_s": round(big["wall_s"], 3),
            "peak_rss_mb": round(big["peak_rss_mb"], 1),
            "servers": big["servers"],
            "shards": big["shards"],
            "budget_s": SHARDED_DEEP_BUDGET_S,
            "rss_budget_mb": SHARDED_DEEP_RSS_MB,
        }
    path = bench_json_merge("scaling", "allocate_sharded", payload)
    lines = [
        f"sharded allocate at N={SHARDED_SMALL_VMS}: exact {exact_ms:.0f} ms, "
        f"sharded {sharded_ms:.0f} ms ({speedup:.2f}x), "
        f"energy-proxy ratio {proxy_ratio:.4f}",
        f"end-to-end N={SHARDED_LARGE_VMS}: {large['wall_s']:.1f} s, "
        f"{large['peak_rss_mb']:.0f} MB peak RSS, {large['shards']} shards",
    ]
    if deep:
        lines.append(
            f"deep N={SHARDED_DEEP_VMS}: {big['wall_s']:.1f} s, "
            f"{big['peak_rss_mb']:.0f} MB peak RSS, {big['shards']} shards"
        )
    report("\n".join(lines) + f"\npersisted to {path}")

    assert deviation <= ENERGY_DEVIATION_BOUND, (
        f"sharded energy proxy deviates {deviation:.4f} from exact, "
        f"committed bound is {ENERGY_DEVIATION_BOUND}"
    )
    assert speedup >= SHARDED_MIN_SPEEDUP, (
        f"sharded allocate only {speedup:.2f}x faster than exact at "
        f"N={SHARDED_SMALL_VMS}, gate is {SHARDED_MIN_SPEEDUP}x"
    )
    assert large["wall_s"] < SHARDED_LARGE_BUDGET_S, (
        f"N={SHARDED_LARGE_VMS} sharded allocate took {large['wall_s']:.1f} s, "
        f"budget is {SHARDED_LARGE_BUDGET_S} s"
    )
    assert large["peak_rss_mb"] < SHARDED_LARGE_RSS_MB, (
        f"N={SHARDED_LARGE_VMS} sharded allocate peaked at "
        f"{large['peak_rss_mb']:.0f} MB, budget is {SHARDED_LARGE_RSS_MB} MB"
    )
    if deep:
        assert big["wall_s"] < SHARDED_DEEP_BUDGET_S, (
            f"N={SHARDED_DEEP_VMS} sharded allocate took {big['wall_s']:.1f} s, "
            f"budget is {SHARDED_DEEP_BUDGET_S} s"
        )
        assert big["peak_rss_mb"] < SHARDED_DEEP_RSS_MB, (
            f"N={SHARDED_DEEP_VMS} sharded allocate peaked at "
            f"{big['peak_rss_mb']:.0f} MB, budget is {SHARDED_DEEP_RSS_MB} MB"
        )


def test_churn_gate(report, bench_json_merge):
    """Sustained churn at N=10k through the incremental-membership stack.

    A :class:`~repro.sim.churn.ChurnEngine` drives admit/decide/retire
    over a synthesized arrival–departure feed against the sharded
    allocator.  Because membership deltas invalidate only the shards
    (and horizon rows) they touch, warm periods must not pay
    rebuild-sized spikes: the gate pins the p99/p50 decide-latency
    ratio over the post-cold periods (dimensionless, compared across
    boxes by ``tools/compare_bench.py``), while the raw p99 latency and
    event throughput travel as informational keys.
    """
    traces, _membership = generate_datacenter_traces(
        DatacenterTraceConfig(
            num_vms=CHURN_VMS,
            num_clusters=64,
            seed=17,
            profile_layout="v2",
        )
    )
    period_duration_s = CHURN_SAMPLES_PER_PERIOD * traces.period_s
    events = synthesize_churn_events(
        traces.names,
        CHURN_PERIODS,
        period_duration_s,
        events_per_period=CHURN_EVENTS_PER_PERIOD,
        seed=17,
    )
    manager = PowerManager(
        ManagerConfig(
            n_cores=XEON_E5410.n_cores,
            freq_levels_ghz=XEON_E5410.freq_levels_ghz,
            allocator="sharded",
            sharding=ShardingConfig(),
        )
    )
    engine = ChurnEngine(
        manager, traces, events, samples_per_period=CHURN_SAMPLES_PER_PERIOD
    )

    start = time.perf_counter()
    records = engine.run(CHURN_PERIODS)
    wall_s = time.perf_counter() - start

    assert len(records) == CHURN_PERIODS
    assert all(record.active_vms > 0 for record in records)
    total_events = sum(r.arrivals + r.departures for r in records)
    assert total_events == len(events)

    # The cold first period pays the initial build; the gate watches the
    # steady churn regime that follows.
    warm = np.array([record.decide_ms for record in records[1:]])
    p50_ms = float(np.percentile(warm, 50.0))
    p99_ms = float(np.percentile(warm, 99.0))
    ratio = p99_ms / p50_ms
    events_per_s = total_events / wall_s
    cold_ms = records[0].decide_ms

    payload = {
        "vms": CHURN_VMS,
        "periods": CHURN_PERIODS,
        "events_per_period": CHURN_EVENTS_PER_PERIOD,
        "total_events": total_events,
        "active_mean": round(
            float(np.mean([r.active_vms for r in records])), 1
        ),
        "cold_ms": round(cold_ms, 3),
        "p50_ms": round(p50_ms, 3),
        "p99_ms": round(p99_ms, 3),
        "p99_vs_p50": round(ratio, 3),
        "ratio_max": CHURN_LATENCY_RATIO_MAX,
        "events_per_s": round(events_per_s, 3),
        "wall_s": round(wall_s, 3),
    }
    path = bench_json_merge("scaling", "churn", payload)
    report(
        f"sustained churn at N={CHURN_VMS}: decide p50 {p50_ms:.0f} ms, "
        f"p99 {p99_ms:.0f} ms (ratio {ratio:.2f}), cold {cold_ms:.0f} ms, "
        f"{events_per_s:.1f} events/s over {len(events)} events"
        f"\npersisted to {path}"
    )
    assert ratio <= CHURN_LATENCY_RATIO_MAX, (
        f"churn p99/p50 decide ratio {ratio:.2f} exceeds "
        f"{CHURN_LATENCY_RATIO_MAX}: membership deltas are triggering "
        f"rebuild-sized spikes"
    )


SLO_FRONTIER_P99_VS_SLO_MAX = 2.0


def test_slo_frontier_gate(report, bench_json_merge):
    """Energy-vs-tail frontier: determinism, equivalence, SLO ceiling.

    Runs the fast ``slo_frontier`` experiment twice — serially and over
    a two-worker pool — and requires the two runs to be byte-identical
    (:func:`repro.experiments.slo_frontier.frontier_fingerprint`).  The
    whole pipeline is seeded, so the worst p99-vs-SLO ratio is a
    *deterministic* dimensionless number: ``tools/compare_bench.py``
    gates it against the committed trajectory, and this test caps it
    absolutely — a placement or dispatch regression that saturates the
    scored regions trips the ceiling on the box that runs it.
    """
    start = time.perf_counter()
    serial = slo_frontier.run(fast=True)
    frontier_ms = (time.perf_counter() - start) * 1e3
    pooled = slo_frontier.run(fast=True, workers=2)
    equal = slo_frontier.frontier_fingerprint(serial) == slo_frontier.frontier_fingerprint(pooled)

    data = serial.data
    frontier = data["frontier"]
    worst = data["worst_p99_vs_slo"]
    worst_p99_ms = max(
        point["p99_s"] for points in frontier.values() for point in points
    ) * 1e3
    monotone = data["p99_monotone_in_load"]

    payload = {
        "policies": len(data["policies"]),
        "load_points": len(data["load_points"]),
        "slo_s": data["slo_s"],
        "worst_p99_vs_slo": round(worst, 4),
        "p99_ms": round(worst_p99_ms, 3),
        "monotone_policies": sum(monotone.values()),
        "serial_equals_parallel": 1.0 if equal else 0.0,
        "ratio_max": SLO_FRONTIER_P99_VS_SLO_MAX,
        "frontier_ms": round(frontier_ms, 3),
    }
    path = bench_json_merge("scaling", "slo_frontier", payload)
    report(
        f"slo_frontier: {len(data['policies'])} policies x "
        f"{len(data['load_points'])} load points, worst p99/SLO {worst:.3f} "
        f"(p99 {worst_p99_ms:.0f} ms vs SLO {data['slo_s'] * 1e3:.0f} ms), "
        f"{sum(monotone.values())}/{len(monotone)} policies monotone, "
        f"serial==pooled {equal}, wall {frontier_ms:.0f} ms"
        f"\npersisted to {path}"
    )
    assert equal, "serial and workers=2 frontier runs must be byte-identical"
    for name, points in frontier.items():
        assert len(points) == len(data["load_points"]), name
        assert all(point["completed"] > 0 for point in points), name
    assert worst <= SLO_FRONTIER_P99_VS_SLO_MAX, (
        f"worst p99/SLO ratio {worst:.3f} exceeds "
        f"{SLO_FRONTIER_P99_VS_SLO_MAX}: the scored placements are "
        f"saturating under the frontier's calibrated load grid"
    )
