"""Fleet-size scaling of the vectorized kernels (build / update / allocate).

The paper's efficiency argument (Section IV-A) is that the Eqn-1 cost is
cheap enough to update "at each sampling period"; the ROADMAP demands
that hold at production fleet sizes, not the paper's 40 VMs.  This bench
times the three hot paths at N ∈ {40, 200, 1000}:

* ``build``   — exact :meth:`CostMatrix.from_traces` over a full window;
* ``update``  — one :meth:`StreamingCostMatrix.update` (the per-sample
  online cost, peak mode);
* ``allocate`` — the full ALLOCATE phase through the indexed fast path.

plus an end-to-end *replay gate*: a full trace replay (placement +
per-period accounting) of a 1000-VM / 125-server fleet through the
fleet-vectorized engine, in both DVFS modes, gated on per-period wall
time.

Results are persisted to ``BENCH_scaling.json`` (via the
``bench_json_merge`` fixture) so the numbers travel with the PR, and
three hard gates encode
the acceptance bar: the 1000-VM streaming update stays under 50 ms per
sample, peak-mode streaming stays bit-exact against the exact matrix at
every size, and the 1000-VM dynamic-mode replay stays under the
per-period budget.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.allocation import CorrelationAwareAllocator
from repro.core.correlation import CostMatrix, StreamingCostMatrix
from repro.infrastructure.server import XEON_E5410
from repro.sim.approaches import BfdApproach
from repro.sim.engine import ReplayConfig, replay
from repro.traces.trace import TraceSet, UtilizationTrace

SIZES = (40, 200, 1000)
WINDOW_SAMPLES = 720
UPDATE_BUDGET_MS_AT_1000 = 50.0

REPLAY_VMS = 1000
REPLAY_SERVERS = 125
REPLAY_PERIODS = 3  # 1 warm-up + 2 measured
REPLAY_BUDGET_MS_PER_PERIOD = 30.0


def _fleet(n: int) -> TraceSet:
    rng = np.random.default_rng(n)
    return TraceSet(
        UtilizationTrace(rng.uniform(0.0, 4.0, size=WINDOW_SAMPLES), 5.0, f"vm{i:04d}")
        for i in range(n)
    )


def _time_ms(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best * 1e3


def test_scaling_suite(report, bench_json_merge):
    results: dict[str, dict[str, float]] = {}
    for n in SIZES:
        fleet = _fleet(n)
        repeats = 3 if n >= 1000 else 5

        build_ms = _time_ms(lambda: CostMatrix.from_traces(fleet), repeats)
        matrix = CostMatrix.from_traces(fleet)

        streaming = StreamingCostMatrix(fleet.names)
        vector = fleet.matrix[:, 0]
        streaming.update(vector)  # warm the arrays
        update_ms = _time_ms(lambda: streaming.update(vector), max(repeats, 10))

        refs = matrix.references()
        allocator = CorrelationAwareAllocator()
        allocate_ms = _time_ms(
            lambda: allocator.allocate(
                list(fleet.names),
                refs,
                None,
                8,
                cost_array=matrix.as_array(),
                name_index=matrix.name_index,
            ),
            repeats,
        )

        # Bit-exactness gate: fold the whole window and compare against
        # the exact matrix (a running maximum is lossless).
        streaming.reset()
        for column in fleet.matrix.T:
            streaming.update(column)
        assert np.array_equal(streaming.as_array(), matrix.as_array()), (
            f"peak-mode streaming diverged from the exact matrix at N={n}"
        )

        results[str(n)] = {
            "build_ms": round(build_ms, 3),
            "update_ms": round(update_ms, 3),
            "allocate_ms": round(allocate_ms, 3),
        }

    assert results["1000"]["update_ms"] < UPDATE_BUDGET_MS_AT_1000, (
        f"1000-VM streaming update took {results['1000']['update_ms']} ms, "
        f"budget is {UPDATE_BUDGET_MS_AT_1000} ms"
    )

    payload = {
        "window_samples": WINDOW_SAMPLES,
        "n_cores": 8,
        "sizes": results,
    }
    path = bench_json_merge("scaling", "kernels", payload)
    lines = [f"{'N':>6} {'build ms':>10} {'update ms':>10} {'allocate ms':>12}"]
    for n in SIZES:
        row = results[str(n)]
        lines.append(
            f"{n:>6} {row['build_ms']:>10.3f} {row['update_ms']:>10.3f} "
            f"{row['allocate_ms']:>12.3f}"
        )
    lines.append(f"persisted to {path}")
    report("\n".join(lines))


def test_replay_gate(report, bench_json_merge):
    """End-to-end replay accounting for a 1000-VM / 125-server fleet.

    The whole pipeline behind every experiment — placement each period,
    frequency planning, violation / residency / energy accounting —
    must stay in interactive territory at production scale.  The
    fleet-vectorized engine turns the old O(servers x intervals) Python
    loop into a handful of kernels; this gate pins that down to a
    per-period wall-clock budget (the pre-vectorization engine missed it
    roughly 2x in dynamic mode).
    """
    rng = np.random.default_rng(REPLAY_VMS)
    matrix = rng.uniform(
        0.05, 0.85, size=(REPLAY_VMS, REPLAY_PERIODS * WINDOW_SAMPLES)
    )
    traces = TraceSet.from_matrix(
        matrix, [f"vm{i:04d}" for i in range(REPLAY_VMS)], 5.0
    )
    measured_periods = REPLAY_PERIODS - 1

    results: dict[str, dict[str, float]] = {}
    for mode in ("static", "dynamic"):
        config = ReplayConfig(tperiod_s=3600.0, dvfs_mode=mode)

        def _run():
            approach = BfdApproach(
                XEON_E5410.n_cores,
                XEON_E5410.freq_levels_ghz,
                max_servers=REPLAY_SERVERS,
                default_reference=1.0,
            )
            return replay(traces, XEON_E5410, REPLAY_SERVERS, approach, config)

        result = _run()  # warm + correctness probe
        assert result.num_periods == measured_periods
        total = sum(result.residency.merged().values()) + sum(
            result.residency.inactive(i) for i in range(REPLAY_SERVERS)
        )
        assert total == measured_periods * WINDOW_SAMPLES * REPLAY_SERVERS

        replay_ms = _time_ms(_run, 3)
        results[mode] = {
            "replay_ms": round(replay_ms, 3),
            "per_period_ms": round(replay_ms / measured_periods, 3),
        }

    # Persist before gating: a budget miss must still ship the numbers
    # that diagnose it (CI uploads the JSON with `if: always()`).
    payload = {
        "vms": REPLAY_VMS,
        "servers": REPLAY_SERVERS,
        "samples_per_period": WINDOW_SAMPLES,
        "measured_periods": measured_periods,
        "budget_ms_per_period": REPLAY_BUDGET_MS_PER_PERIOD,
        "modes": results,
    }
    path = bench_json_merge("scaling", "replay", payload)
    lines = [f"{'mode':>8} {'replay ms':>10} {'per-period ms':>14}"]
    for mode in ("static", "dynamic"):
        row = results[mode]
        lines.append(f"{mode:>8} {row['replay_ms']:>10.3f} {row['per_period_ms']:>14.3f}")
    lines.append(f"persisted to {path}")
    report("\n".join(lines))

    per_period = results["dynamic"]["per_period_ms"]
    assert per_period < REPLAY_BUDGET_MS_PER_PERIOD, (
        f"1000-VM dynamic replay took {per_period} ms per period, "
        f"budget is {REPLAY_BUDGET_MS_PER_PERIOD} ms"
    )


def test_percentile_streaming_scales(report):
    """Percentile mode (BatchPSquare over all pairs) stays online at N=200."""
    from repro.traces.trace import ReferenceSpec

    fleet = _fleet(200)
    streaming = StreamingCostMatrix(fleet.names, ReferenceSpec(90.0))
    vector = fleet.matrix[:, 0]
    for column in fleet.matrix.T[:6]:  # past the P-square warm-up buffer
        streaming.update(column)
    update_ms = _time_ms(lambda: streaming.update(vector), 10)
    report(f"N=200 percentile-mode streaming update: {update_ms:.3f} ms")
    assert update_ms < UPDATE_BUDGET_MS_AT_1000
