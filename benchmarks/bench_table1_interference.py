"""Table I — co-location interference of web search with PARSEC.

Paper rows (solo values in parentheses):

    w/ Blackscholes  IPC 0.76 (0.75)  MPKI 2.38 (2.40)  miss 11.28 (11.57)
    w/ Swaptions     IPC 0.75 (0.77)  MPKI 2.32 (2.43)  miss 11.02 ( 9.63)
    w/ Facesim       IPC 0.70 (0.70)  MPKI 2.41 (2.36)  miss 11.41 (11.31)
    w/ Canneal       IPC 0.76 (0.78)  MPKI 2.46 (2.43)  miss 11.76 (11.67)

The analytical cache model reproduces the magnitudes of the solo columns
and — the claim that matters — the negligible co-location deltas.
"""

from __future__ import annotations

from repro.experiments import table1


def test_table1_interference(benchmark, report):
    result = benchmark.pedantic(table1.run, rounds=1, iterations=1)
    report(result.render())

    rows = result.data["results"]
    assert len(rows) == 4

    for row in rows:
        # Solo magnitudes in the paper's ballpark.
        assert abs(row.ipc_solo - 0.76) < 0.05
        assert abs(row.mpki_solo - 2.4) < 0.3
        assert abs(row.miss_rate_solo_pct - 11.4) < 1.5
        # Negligible interference — Section III-B's core-sharing premise.
        assert abs(row.ipc_delta_pct) < 3.0
        assert abs(row.mpki_delta_pct) < 5.0
