"""Online deployment: the streaming cost matrix and the PowerManager loop.

Shows the library the way a datacenter controller would run it:

* a :class:`StreamingCostMatrix` folds one utilization vector per
  monitoring sample into O(1)-memory estimators (the paper's Section
  IV-A efficiency argument — no sample buffer, evenly spread compute),
* the same matrix in percentile mode (a softer QoS reference) folding
  whole monitoring windows at once — ``fold_window`` advances the
  lockstep P² estimators, ``to_cost_matrix`` freezes a placement-ready
  snapshot,
* a :class:`PowerManager` consuming each finished window over a
  three-window rolling cost horizon and emitting the next period's
  placement and per-server frequency plan.

Run:  python examples/online_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ManagerConfig,
    PowerManager,
    StreamingCostMatrix,
    TraceSet,
)
from repro.analysis.reporting import ascii_table
from repro.traces.datacenter import DatacenterTraceConfig, generate_datacenter_traces
from repro.traces.synthesis import refine_trace_set
from repro.traces.trace import ReferenceSpec

SAMPLES_PER_PERIOD = 120  # 10 minutes of 5-second samples per decision


def build_population() -> TraceSet:
    config = DatacenterTraceConfig(
        num_vms=12, num_clusters=4, duration_s=2 * 3600.0, seed=31
    )
    coarse, _ = generate_datacenter_traces(config)
    return refine_trace_set(
        coarse, 5.0, sigma=0.05, rng=np.random.default_rng(31), cap=4.0
    )


def main() -> None:
    fine = build_population()

    # --- streaming cost estimation, sample by sample -------------------
    streaming = StreamingCostMatrix(fine.names)
    for column in fine.matrix.T:
        streaming.update(column)
    costs = streaming.as_array()
    upper = costs[np.triu_indices(len(fine.names), 1)]
    print(
        f"Streaming cost matrix over {streaming.count} samples: "
        f"pair costs in [{upper.min():.3f}, {upper.max():.3f}], "
        f"mean {upper.mean():.3f} (no sample buffer kept)"
    )

    # --- percentile references, window at a time -----------------------
    p90 = StreamingCostMatrix(fine.names, ReferenceSpec(90.0))
    for period in range(fine.num_samples // SAMPLES_PER_PERIOD):
        window = fine.slice(
            period * SAMPLES_PER_PERIOD, (period + 1) * SAMPLES_PER_PERIOD
        )
        p90.fold_window(window.matrix)
    snapshot = p90.to_cost_matrix()
    print(
        f"p90 streaming estimate over {p90.count} samples "
        f"({p90.count // SAMPLES_PER_PERIOD} window folds): "
        f"mean pair cost {snapshot.mean_offdiagonal():.3f} "
        f"vs {upper.mean():.3f} at the peak"
    )

    # --- the periodic management loop ----------------------------------
    manager = PowerManager(
        ManagerConfig(
            n_cores=8,
            freq_levels_ghz=(2.0, 2.3),
            max_servers=8,
            default_reference=4.0,
            horizon_periods=3,
        )
    )
    periods = fine.num_samples // SAMPLES_PER_PERIOD
    rows = []
    for period in range(periods - 1):
        window = fine.slice(period * SAMPLES_PER_PERIOD, (period + 1) * SAMPLES_PER_PERIOD)
        decision = manager.decide(window)
        freqs = sorted(
            decision.frequencies[s].freq_ghz for s in decision.placement.active_servers
        )
        rows.append(
            (
                period + 1,
                decision.estimated_servers,
                decision.placement.num_active_servers,
                "/".join(f"{f:.1f}" for f in freqs),
                decision.cost_matrix.mean_offdiagonal(),
            )
        )
    print()
    print(
        ascii_table(
            ["period", "Eqn-3 estimate", "active servers", "freqs (GHz)", "mean pair cost"],
            rows,
            title="PowerManager decisions, one per monitoring window",
        )
    )


if __name__ == "__main__":
    main()
