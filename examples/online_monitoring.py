"""Online deployment: the streaming cost matrix and the PowerManager loop.

Shows the library the way a datacenter controller would run it:

* a :class:`StreamingCostMatrix` folds one utilization vector per
  monitoring sample into O(1)-memory estimators (the paper's Section
  IV-A efficiency argument — no sample buffer, evenly spread compute),
* a :class:`PowerManager` consumes each finished monitoring window and
  emits the next period's placement and per-server frequency plan.

Run:  python examples/online_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ManagerConfig,
    PowerManager,
    StreamingCostMatrix,
    TraceSet,
    UtilizationTrace,
)
from repro.analysis.reporting import ascii_table
from repro.traces.datacenter import DatacenterTraceConfig, generate_datacenter_traces
from repro.traces.synthesis import refine_trace_set

SAMPLES_PER_PERIOD = 120  # 10 minutes of 5-second samples per decision


def build_population() -> TraceSet:
    config = DatacenterTraceConfig(
        num_vms=12, num_clusters=4, duration_s=2 * 3600.0, seed=31
    )
    coarse, _ = generate_datacenter_traces(config)
    return refine_trace_set(
        coarse, 5.0, sigma=0.05, rng=np.random.default_rng(31), cap=4.0
    )


def main() -> None:
    fine = build_population()

    # --- streaming cost estimation, sample by sample -------------------
    streaming = StreamingCostMatrix(fine.names)
    for column in fine.matrix.T:
        streaming.update(column)
    costs = streaming.as_array()
    upper = costs[np.triu_indices(len(fine.names), 1)]
    print(
        f"Streaming cost matrix over {streaming.count} samples: "
        f"pair costs in [{upper.min():.3f}, {upper.max():.3f}], "
        f"mean {upper.mean():.3f} (no sample buffer kept)"
    )

    # --- the periodic management loop ----------------------------------
    manager = PowerManager(
        ManagerConfig(
            n_cores=8,
            freq_levels_ghz=(2.0, 2.3),
            max_servers=8,
            default_reference=4.0,
        )
    )
    periods = fine.num_samples // SAMPLES_PER_PERIOD
    rows = []
    for period in range(periods - 1):
        window = fine.slice(period * SAMPLES_PER_PERIOD, (period + 1) * SAMPLES_PER_PERIOD)
        decision = manager.decide(window)
        freqs = sorted(
            decision.frequencies[s].freq_ghz for s in decision.placement.active_servers
        )
        rows.append(
            (
                period + 1,
                decision.estimated_servers,
                decision.placement.num_active_servers,
                "/".join(f"{f:.1f}" for f in freqs),
                decision.cost_matrix.mean_offdiagonal(),
            )
        )
    print()
    print(
        ascii_table(
            ["period", "Eqn-3 estimate", "active servers", "freqs (GHz)", "mean pair cost"],
            rows,
            title="PowerManager decisions, one per monitoring window",
        )
    )


if __name__ == "__main__":
    main()
