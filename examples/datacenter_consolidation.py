"""Datacenter consolidation: BFD vs PCP vs the correlation-aware scheme.

A scaled-down Setup-2 run (24 VMs, 12 servers, 12 hours) comparing the
three approaches under static and dynamic v/f scaling, reporting the
Table-II metrics plus secondary ones the paper does not show: migrations
between placements, mean active servers, and the fleet-wide frequency
residency behind the power numbers.

Run:  python examples/datacenter_consolidation.py
"""

from __future__ import annotations

from repro.analysis.reporting import ascii_histogram, ascii_table
from repro.experiments.setup2 import Setup2Config, build_fine_traces, run_setup2
from repro.traces.datacenter import DatacenterTraceConfig


def main() -> None:
    traces_config = DatacenterTraceConfig(
        num_vms=24, num_clusters=6, duration_s=12 * 3600.0, seed=77
    )
    config = Setup2Config(traces=traces_config, num_servers=12)
    fine = build_fine_traces(config)
    print(
        f"Population: {fine.num_traces} VMs, {fine.num_samples} samples at "
        f"{fine.period_s:.0f}s, mean demand "
        f"{fine.matrix.mean():.2f} cores/VM on {config.num_servers}x "
        f"{config.spec.name}"
    )

    for mode in ("static", "dynamic"):
        outcome = run_setup2(config, dvfs_mode=mode, fine_traces=fine)
        base = outcome.result("BFD").avg_power_w
        rows = [
            (
                r.approach_name,
                r.avg_power_w / base,
                r.max_violation_pct,
                r.mean_active_servers,
                r.migrations,
            )
            for r in outcome.results
        ]
        print()
        print(
            ascii_table(
                ["approach", "norm. power", "max viol (%)", "active servers", "migrations"],
                rows,
                title=f"{mode} v/f scaling",
            )
        )

    # Frequency residency (the Fig-6 mechanism) for the static run.
    outcome = run_setup2(config, dvfs_mode="static", fine_traces=fine)
    print()
    for name in ("BFD", "Proposed"):
        merged = outcome.result(name).residency.merged()
        print(
            ascii_histogram(
                {f"{f:.1f} GHz": c for f, c in merged.items()},
                title=f"Fleet frequency residency - {name}",
            )
        )
        print()


if __name__ == "__main__":
    main()
