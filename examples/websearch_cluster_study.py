"""Web-search cluster study: placements, latency and a flash crowd.

Recreates the paper's Setup-1 experiment with the fork-join queueing
simulator and then stresses it beyond the paper: a flash crowd hits
Cluster1 while Cluster2 idles, showing how the correlation-aware shared
placement absorbs the surge that saturates the segregated one.

Run:  python examples/websearch_cluster_study.py
"""

from __future__ import annotations

from repro.analysis.reporting import ascii_series, ascii_table
from repro.experiments.setup1 import (
    PLACEMENT_BUILDERS,
    Setup1Config,
    websearch_clusters,
)
from repro.workloads.clients import FlashCrowdClients
from repro.workloads.queueing import (
    ForkJoinQueueingSimulator,
    QueueingConfig,
    Region,
    SimCluster,
)

import numpy as np


def paper_style_comparison() -> None:
    """Fig 4/5 style: three placements, two frequencies, p90 per cluster."""
    config = Setup1Config(duration_s=450.0)
    rows = []
    for placement in ("Segregated", "Shared-UnCorr", "Shared-Corr"):
        for freq in (2.1,) if placement != "Shared-Corr" else (2.1, 1.9):
            clusters, regions = PLACEMENT_BUILDERS[placement](config, freq)
            result = ForkJoinQueueingSimulator(
                clusters, regions, config.queueing()
            ).run()
            rows.append(
                (
                    f"{placement} ({freq}GHz)",
                    result.p90_response_s("Cluster1"),
                    result.p90_response_s("Cluster2"),
                    result.completed_queries,
                )
            )
    print(
        ascii_table(
            ["configuration", "C1 p90 (s)", "C2 p90 (s)", "queries"],
            rows,
            title="Setup-1: p90 response time per placement",
        )
    )


def cluster_demand_traces() -> None:
    """Fig 1 style: the open-loop per-ISN demand signals."""
    config = Setup1Config(duration_s=450.0)
    cluster1, _ = websearch_clusters(config)
    rng = np.random.default_rng(config.seed)
    traces = cluster1.isn_demand_traces(config.duration_s, 1.0, rng)
    print()
    print(ascii_series(traces[0].samples, height=8, title="Cluster1 ISN1 demand (cores)"))
    print()
    print(ascii_series(traces[1].samples, height=8, title="Cluster1 ISN2 demand (cores)"))


def flash_crowd_stress() -> None:
    """Beyond the paper: a flash crowd on Cluster1 only."""
    crowd = FlashCrowdClients(60.0, [(200.0, 350.0, 40.0)])
    quiet = FlashCrowdClients(60.0, [])
    queueing = QueueingConfig(
        duration_s=400.0, qps_per_client=0.244, base_demand_core_s=0.045, seed=23
    )

    def clusters(regions_of: dict[str, str]) -> list[SimCluster]:
        return [
            SimCluster("Crowd", crowd, ("c-isn1", "c-isn2"),
                       (regions_of["c-isn1"], regions_of["c-isn2"])),
            SimCluster("Quiet", quiet, ("q-isn1", "q-isn2"),
                       (regions_of["q-isn1"], regions_of["q-isn2"])),
        ]

    segregated = ForkJoinQueueingSimulator(
        clusters({"c-isn1": "s1a", "c-isn2": "s1b", "q-isn1": "s2a", "q-isn2": "s2b"}),
        [Region("s1a", 4), Region("s1b", 4), Region("s2a", 4), Region("s2b", 4)],
        queueing,
    ).run()
    mixed = ForkJoinQueueingSimulator(
        clusters({"c-isn1": "s1", "q-isn1": "s1", "c-isn2": "s2", "q-isn2": "s2"}),
        [Region("s1", 8), Region("s2", 8)],
        queueing,
    ).run()

    print()
    print(
        ascii_table(
            ["placement", "Crowd p90 (s)", "Quiet p90 (s)"],
            [
                ("Segregated (4-core slices)", segregated.p90_response_s("Crowd"),
                 segregated.p90_response_s("Quiet")),
                ("Correlation-aware shared", mixed.p90_response_s("Crowd"),
                 mixed.p90_response_s("Quiet")),
            ],
            title="Flash crowd on Cluster1: shared cores absorb the surge",
        )
    )


if __name__ == "__main__":
    paper_style_comparison()
    cluster_demand_traces()
    flash_crowd_stress()
