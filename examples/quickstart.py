"""Quickstart: the correlation cost, the allocator and the v/f decision.

Builds two pairs of VMs — one pair whose peaks coincide, one whose peaks
alternate — and walks the paper's pipeline end to end:

1. measure pairwise correlation costs (Eqn 1),
2. place the VMs with the correlation-aware allocator (Fig 2),
3. choose each server's frequency (Eqn 4),
4. compare against Best-Fit-Decreasing at peak-sum provisioning.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CorrelationAwareAllocator,
    CostMatrix,
    FrequencyLadder,
    TraceSet,
    UtilizationTrace,
    best_fit_decreasing,
    correlation_aware_frequency,
    peak_sum_frequency,
)

N_CORES = 8
LADDER = FrequencyLadder((2.0, 2.3))


def build_traces() -> TraceSet:
    """Two anti-correlated services, two VMs each, 1-second samples."""
    t = np.arange(600.0)
    day_shift = np.sin(2 * np.pi * t / 300.0)
    # The web VMs are the two largest, so a size-sorted, correlation-blind
    # packer will put them together — exactly the failure the paper targets.
    web1 = 2.0 + 1.8 * day_shift
    web2 = 2.0 + 1.75 * day_shift
    batch1 = 1.8 - 1.6 * day_shift
    batch2 = 1.75 - 1.55 * day_shift
    return TraceSet(
        [
            UtilizationTrace(np.clip(web1, 0, 4), 1.0, "web-1"),
            UtilizationTrace(np.clip(web2, 0, 4), 1.0, "web-2"),
            UtilizationTrace(np.clip(batch1, 0, 4), 1.0, "batch-1"),
            UtilizationTrace(np.clip(batch2, 0, 4), 1.0, "batch-2"),
        ]
    )


def main() -> None:
    traces = build_traces()

    # 1. Correlation costs: higher = less correlated = better co-location.
    matrix = CostMatrix.from_traces(traces)
    print("Pairwise correlation costs (Eqn 1; 1.0 = peaks coincide):")
    for a, b in [("web-1", "web-2"), ("web-1", "batch-1"), ("batch-1", "batch-2")]:
        print(f"  Cost({a}, {b}) = {matrix.cost(a, b):.3f}")

    # 2. Correlation-aware placement.
    refs = matrix.references()
    placement = CorrelationAwareAllocator().allocate(
        list(traces.names), refs, matrix.cost, N_CORES
    )
    print("\nCorrelation-aware placement:")
    for server, members in placement.by_server().items():
        committed = sum(refs[vm] for vm in members)
        print(f"  server{server}: {', '.join(members)}  (committed {committed:.2f} cores)")

    # 3. Aggressive-yet-safe frequency per server (Eqn 4).
    print("\nFrequency decisions:")
    for server, members in placement.by_server().items():
        aware = correlation_aware_frequency(list(members), refs, matrix.cost, LADDER, N_CORES)
        naive = peak_sum_frequency(list(members), refs, LADDER, N_CORES)
        actual_peak = traces.aggregate(list(members)).peak()
        print(
            f"  server{server}: Eqn-4 target {aware.target_ghz:.2f} GHz -> {aware.freq_ghz} GHz "
            f"(peak-sum would pick {naive.freq_ghz} GHz; actual joint peak "
            f"{actual_peak:.2f} <= capacity {N_CORES * aware.freq_ghz / LADDER.fmax_ghz:.2f})"
        )

    # 4. What a correlation-blind packer does with the same predictions.
    blind = best_fit_decreasing(list(traces.names), refs, N_CORES)
    print("\nBest-fit-decreasing placement (correlation-blind):")
    for server, members in blind.by_server().items():
        joint_peak = traces.aggregate(list(members)).peak()
        print(f"  server{server}: {', '.join(members)}  (actual joint peak {joint_peak:.2f})")


if __name__ == "__main__":
    main()
