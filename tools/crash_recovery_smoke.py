#!/usr/bin/env python
"""Crash-recovery smoke test: SIGKILL a checkpointed replay, resume it.

CI's end-to-end proof that the checkpoint subsystem survives a real
crash, not just an in-process exception:

1. spawn a child process running a small checkpointed replay whose
   approach sleeps per decision (so the parent can reliably kill it
   between checkpoints),
2. wait for the first checkpoint file, then SIGKILL the child,
3. re-run the same replay with ``resume_from`` pointing at the
   checkpoint directory, letting it finish,
4. compare the resumed result byte-for-byte (``pickle.dumps``) against
   an uninterrupted in-process reference replay.

Exit code 0 on byte-identity, 1 on any divergence or setup failure.
Usage: ``python tools/crash_recovery_smoke.py [--workdir DIR]`` (the
child re-enters this script with ``--child``).
"""

from __future__ import annotations

import argparse
import pickle
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.infrastructure.server import XEON_E5410  # noqa: E402
from repro.sim.approaches import BfdApproach  # noqa: E402
from repro.sim.checkpoint import CheckpointPolicy, list_checkpoints  # noqa: E402
from repro.sim.engine import ReplayConfig, replay  # noqa: E402
from repro.traces.trace import TraceSet, UtilizationTrace  # noqa: E402

NUM_VMS = 8
NUM_SERVERS = 6
PERIODS = 6
SAMPLES_PER_PERIOD = 60
DECIDE_SLEEP_S = 0.4


def _traces() -> TraceSet:
    rng = np.random.default_rng(2013)
    n = PERIODS * SAMPLES_PER_PERIOD
    return TraceSet(
        UtilizationTrace(rng.uniform(0.2, 3.5, n), 5.0, f"vm{i}") for i in range(NUM_VMS)
    )


class SleepyBfd(BfdApproach):
    """BFD with a per-decision sleep so a kill lands mid-replay."""

    def decide(self, window):
        time.sleep(DECIDE_SLEEP_S)
        return super().decide(window)


def _approach(sleepy: bool):
    cls = SleepyBfd if sleepy else BfdApproach
    return cls(
        XEON_E5410.n_cores,
        XEON_E5410.freq_levels_ghz,
        max_servers=NUM_SERVERS,
        default_reference=4.0,
    )


def _config(ckpt_dir: Path) -> ReplayConfig:
    return ReplayConfig(
        tperiod_s=SAMPLES_PER_PERIOD * 5.0,
        checkpoint=CheckpointPolicy(path=ckpt_dir, every_periods=1, keep=100),
    )


def run_child(ckpt_dir: Path, out_path: Path) -> int:
    """One checkpointed (and resumable) replay; writes the result pickle."""
    result = replay(
        _traces(),
        XEON_E5410,
        NUM_SERVERS,
        _approach(sleepy=True),
        _config(ckpt_dir),
        resume_from=ckpt_dir,
    )
    out_path.write_bytes(pickle.dumps(result))
    return 0


def run_parent(workdir: Path) -> int:
    ckpt_dir = workdir / "checkpoints"
    out_path = workdir / "result.pkl"

    child_cmd = [
        sys.executable,
        str(Path(__file__).resolve()),
        "--child",
        "--workdir",
        str(workdir),
    ]
    child = subprocess.Popen(child_cmd)
    deadline = time.monotonic() + 120.0
    try:
        while time.monotonic() < deadline:
            if list_checkpoints(ckpt_dir):
                break
            if child.poll() is not None:
                print("FAIL: child exited before writing any checkpoint")
                return 1
            time.sleep(0.05)
        else:
            print("FAIL: no checkpoint appeared within 120 s")
            return 1
    finally:
        if child.poll() is None:
            child.send_signal(signal.SIGKILL)
        child.wait(timeout=60)
    if out_path.exists():
        print("FAIL: child finished before it could be killed (slow it down)")
        return 1
    print(
        f"killed child after {len(list_checkpoints(ckpt_dir))} checkpoint(s); resuming"
    )

    rerun = subprocess.run(child_cmd, timeout=300, check=False)
    if rerun.returncode != 0 or not out_path.exists():
        print(f"FAIL: resumed run exited {rerun.returncode} without a result")
        return 1
    resumed = out_path.read_bytes()

    # The sleep only slows the child down; the decisions are identical,
    # so the fast approach gives the same reference bytes.
    reference = pickle.dumps(
        replay(
            _traces(),
            XEON_E5410,
            NUM_SERVERS,
            _approach(sleepy=False),
            ReplayConfig(tperiod_s=SAMPLES_PER_PERIOD * 5.0),
        )
    )
    if resumed != reference:
        print("FAIL: resumed result is not byte-identical to the reference replay")
        return 1
    print("OK: SIGKILL'd replay resumed byte-identically")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--child", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument(
        "--workdir",
        type=Path,
        default=None,
        help="scratch directory (a temporary one is created by default)",
    )
    args = parser.parse_args(argv)

    if args.child:
        if args.workdir is None:
            print("FAIL: --child requires --workdir")
            return 1
        return run_child(args.workdir / "checkpoints", args.workdir / "result.pkl")

    if args.workdir is not None:
        args.workdir.mkdir(parents=True, exist_ok=True)
        return run_parent(args.workdir)
    with tempfile.TemporaryDirectory(prefix="crash-recovery-") as tmp:
        return run_parent(Path(tmp))


if __name__ == "__main__":
    sys.exit(main())
