#!/usr/bin/env python
"""SLO-frontier smoke test: tiny grid through the real experiment.

CI's end-to-end proof that the request-level workload library stays
wired to the placement stack: runs ``slo_frontier`` over a deliberately
tiny population (8 VMs, 6 servers, 2 h of traces) with two policies and
two load points, then requires the result to carry every frontier field
the bench gate and the README table consume:

1. the ``frontier`` mapping holds exactly the requested policies, each
   with one point per load point and a completed-request count > 0,
2. the monotonicity verdicts (``p99_monotone_in_load``) and the SLO
   score (``worst_p99_vs_slo``) are present and well-formed,
3. the grid echo (``load_points``, ``slo_s``, ``rates_qps``) matches
   what was asked for, so downstream tables can trust it.

This is a wiring check, not a performance gate — the full five-policy
sweep with its serial==pooled equivalence and SLO ceiling lives in
``benchmarks/bench_scaling.py::test_slo_frontier_gate``.

Exit code 0 when every field checks out, 1 on any divergence.  Usage:
``python tools/slo_frontier_smoke.py``.
"""

from __future__ import annotations

import math
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments import slo_frontier  # noqa: E402
from repro.experiments.setup2 import Setup2Config  # noqa: E402
from repro.traces.datacenter import DatacenterTraceConfig  # noqa: E402

POLICIES = ("BFD", "Proposed")
LOAD_POINTS = (0.3, 0.6)
DURATION_S = 20.0


def _fail(message: str) -> None:
    print(f"slo-frontier smoke FAILED: {message}")
    raise SystemExit(1)


def main() -> int:
    config = Setup2Config(
        traces=DatacenterTraceConfig(
            num_vms=8, num_clusters=4, duration_s=2 * 3600.0
        ),
        num_servers=6,
    )
    result = slo_frontier.run(
        config=config,
        policies=POLICIES,
        load_points=LOAD_POINTS,
        request_duration_s=DURATION_S,
    )
    print(result.sections["frontier"])

    data = result.data
    for field in (
        "frontier",
        "p99_monotone_in_load",
        "worst_p99_vs_slo",
        "load_points",
        "slo_s",
        "rates_qps",
        "energy_j",
    ):
        if field not in data:
            _fail(f"result.data is missing the {field!r} field")

    if data["load_points"] != LOAD_POINTS:
        _fail(f"load_points echoed {data['load_points']!r}, asked {LOAD_POINTS!r}")
    if tuple(data["frontier"]) != POLICIES:
        _fail(f"frontier covers {tuple(data['frontier'])!r}, asked {POLICIES!r}")

    for name, points in data["frontier"].items():
        if len(points) != len(LOAD_POINTS):
            _fail(f"{name}: {len(points)} points for {len(LOAD_POINTS)} loads")
        for point in points:
            if point["completed"] <= 0:
                _fail(f"{name} at load {point['load']}: no completed requests")
            if not math.isfinite(point["p99_s"]) or point["p99_s"] <= 0:
                _fail(f"{name} at load {point['load']}: bad p99 {point['p99_s']!r}")

    verdicts = data["p99_monotone_in_load"]
    if set(verdicts) != set(POLICIES):
        _fail(f"monotonicity verdicts cover {sorted(verdicts)!r}")
    if not all(isinstance(flag, bool) for flag in verdicts.values()):
        _fail("monotonicity verdicts must be booleans")

    worst = data["worst_p99_vs_slo"]
    expected = max(
        point["p99_vs_slo"] for points in data["frontier"].values() for point in points
    )
    if not math.isclose(worst, expected):
        _fail(f"worst_p99_vs_slo {worst!r} != max over frontier {expected!r}")

    monotone = sum(verdicts.values())
    print(
        f"slo-frontier smoke passed: {len(POLICIES)} policies x "
        f"{len(LOAD_POINTS)} loads, worst p99/SLO {worst:.3f}, "
        f"{monotone}/{len(POLICIES)} policies monotone"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
