#!/usr/bin/env python
"""Serve-mode smoke test: scripted feed, SIGTERM mid-run, resume.

CI's end-to-end proof that ``repro serve`` — the churn-driven control
loop behind the incremental-membership stack — survives a real service
restart:

1. synthesize a scripted arrival–departure feed and write it to disk,
2. run an uninterrupted reference ``serve`` over the feed, collecting
   its per-period decision reports,
3. re-run with checkpointing enabled, wait for the first checkpoint,
   SIGTERM the process, and require a graceful exit that reports the
   interruption,
4. re-run the same command line with ``--resume`` and require it to
   pick up at the interrupted period and finish,
5. stitch the pre-kill and post-resume period reports together and
   compare them field-by-field (decide latency excluded — it is
   wall-clock) against the uninterrupted reference.

Exit code 0 when the stitched run matches the reference, 1 on any
divergence or setup failure.  Usage:
``python tools/serve_smoke.py [--workdir DIR]``.
"""

from __future__ import annotations

import argparse
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.sim.churn import synthesize_churn_events  # noqa: E402
from repro.traces.datacenter import (  # noqa: E402
    DatacenterTraceConfig,
    generate_datacenter_traces,
)

NUM_VMS = 600
PERIODS = 8
SAMPLES_PER_PERIOD = 24
SEED = 23
CKPT_EVERY = 1
KILL_WAIT_S = 60.0

_PERIOD_LINE = re.compile(r"^period\s+(\d+):")
_DECIDE_MS = re.compile(r"\s*\d+\.\d+ ms decide,")


def _write_feed(path: Path) -> None:
    traces, _membership = generate_datacenter_traces(
        DatacenterTraceConfig(
            num_vms=NUM_VMS, num_clusters=16, seed=SEED, profile_layout="v2"
        )
    )
    period_duration_s = SAMPLES_PER_PERIOD * traces.period_s
    events = synthesize_churn_events(
        traces.names, PERIODS, period_duration_s, events_per_period=4, seed=SEED
    )
    lines = [f"{event.time_s},{event.action},{event.vm}" for event in events]
    path.write_text("\n".join(lines) + "\n")


def _serve_argv(feed: Path, ckpt_dir: Path | None, resume: bool) -> list[str]:
    argv = [
        sys.executable,
        "-m",
        "repro.cli",
        "serve",
        "--events",
        str(feed),
        "--num-vms",
        str(NUM_VMS),
        "--periods",
        str(PERIODS),
        "--samples-per-period",
        str(SAMPLES_PER_PERIOD),
        "--seed",
        str(SEED),
        "--report-every",
        "1",
    ]
    if ckpt_dir is not None:
        argv += [
            "--checkpoint-dir",
            str(ckpt_dir),
            "--checkpoint-every",
            str(CKPT_EVERY),
        ]
    if resume:
        argv.append("--resume")
    return argv


def _env() -> dict[str, str]:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


def _stable_period_lines(output: str) -> dict[int, str]:
    """Map period -> report line with the wall-clock decide field removed."""
    lines: dict[int, str] = {}
    for line in output.splitlines():
        match = _PERIOD_LINE.match(line)
        if match:
            lines[int(match.group(1))] = _DECIDE_MS.sub("", line)
    return lines


def _fail(message: str) -> int:
    print(f"serve smoke FAILED: {message}", file=sys.stderr)
    return 1


def run_smoke(workdir: Path) -> int:
    feed = workdir / "events.csv"
    _write_feed(feed)
    env = _env()

    print(f"serve smoke: reference run ({NUM_VMS} VMs, {PERIODS} periods)")
    reference = subprocess.run(
        _serve_argv(feed, None, resume=False),
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    if reference.returncode != 0:
        return _fail(f"reference run exited {reference.returncode}:\n{reference.stderr}")
    want = _stable_period_lines(reference.stdout)
    if sorted(want) != list(range(PERIODS)):
        return _fail(f"reference run reported periods {sorted(want)}")

    ckpt_dir = workdir / "ck"
    print("serve smoke: checkpointed run, SIGTERM after the first checkpoint")
    child = subprocess.Popen(
        _serve_argv(feed, ckpt_dir, resume=False),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    deadline = time.monotonic() + KILL_WAIT_S
    while time.monotonic() < deadline:
        if any(ckpt_dir.glob("*.ckpt")):
            break
        if child.poll() is not None:
            out, err = child.communicate()
            return _fail(
                "serve exited before the first checkpoint "
                f"(code {child.returncode}):\n{out}\n{err}"
            )
        time.sleep(0.05)
    else:
        child.kill()
        return _fail(f"no checkpoint appeared within {KILL_WAIT_S} s")
    child.send_signal(signal.SIGTERM)
    try:
        out, err = child.communicate(timeout=KILL_WAIT_S)
    except subprocess.TimeoutExpired:
        child.kill()
        return _fail("serve did not exit after SIGTERM")
    if child.returncode != 0:
        return _fail(f"interrupted run exited {child.returncode}:\n{err}")
    if "serve: interrupted at period" not in out:
        return _fail(f"interrupted run did not report the interruption:\n{out}")
    pre_kill = _stable_period_lines(out)
    resume_at = max(pre_kill) + 1 if pre_kill else 0

    print(f"serve smoke: resuming at period {resume_at}")
    resumed = subprocess.run(
        _serve_argv(feed, ckpt_dir, resume=True),
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    if resumed.returncode != 0:
        return _fail(f"resumed run exited {resumed.returncode}:\n{resumed.stderr}")
    match = re.search(r"serve: resumed at period (\d+)", resumed.stdout)
    if not match:
        return _fail(f"resumed run did not report a resume point:\n{resumed.stdout}")
    resumed_period = int(match.group(1))
    if resumed_period < 1:
        return _fail(f"resume point {resumed_period} means the kill landed too early")
    post_resume = _stable_period_lines(resumed.stdout)

    stitched = {p: line for p, line in pre_kill.items() if p < resumed_period}
    stitched.update(post_resume)
    if sorted(stitched) != list(range(PERIODS)):
        return _fail(
            f"stitched run covers periods {sorted(stitched)}, expected 0..{PERIODS - 1}"
        )
    for period in range(PERIODS):
        if stitched[period] != want[period]:
            return _fail(
                f"period {period} diverged after resume:\n"
                f"  reference: {want[period]}\n"
                f"  stitched:  {stitched[period]}"
            )
    print(
        f"serve smoke OK: killed at period {resumed_period}, resumed, "
        f"all {PERIODS} period reports match the uninterrupted run"
    )
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workdir",
        type=Path,
        default=None,
        help="working directory (default: a fresh temp dir)",
    )
    args = parser.parse_args()
    if args.workdir is not None:
        args.workdir.mkdir(parents=True, exist_ok=True)
        return run_smoke(args.workdir)
    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as tmp:
        return run_smoke(Path(tmp))


if __name__ == "__main__":
    sys.exit(main())
