#!/usr/bin/env python
"""Bench-trajectory comparison (run by CI after the scaling gates).

``benchmarks/bench_scaling.py`` persists its numbers to
``BENCH_scaling.json``; the copy at the repository root is committed, so
every PR's numbers travel with it.  This tool diffs a freshly generated
trajectory (CI writes one to ``bench-results/BENCH_scaling.json``)
against the committed file and fails on:

1. **Missing gate keys** — a section or gated entry present in the
   committed trajectory but absent from the fresh one means a gate was
   renamed, retired, or silently skipped; either way the committed JSON
   and the bench suite have drifted apart and must be reconciled in the
   same PR.
2. **>25% regressions on gated entries** — the *dimensionless* gate
   numbers (speedups, ratios, deviation bounds).  Those compare
   meaningfully across machines: a speedup is a property of the kernel,
   not the box, so a fresh run on any hardware should land near the
   committed value.

Raw wall-clock entries (milliseconds) are *reported* but never gated —
CI boxes and the single-core container the committed numbers come from
differ too much for absolute-time comparisons; their hard budgets are
enforced by ``bench_scaling.py`` itself on the box that runs it.

Usage::

    python tools/compare_bench.py bench-results/BENCH_scaling.json
    python tools/compare_bench.py fresh.json --committed BENCH_scaling.json \
        --max-regression 0.25
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Dimensionless gated entries: ``(section, dotted key, direction)``.
#: ``"higher"`` means larger is better (a speedup), ``"lower"`` means
#: smaller is better (a cost ratio or an approximation error).
GATED_ENTRIES: tuple[tuple[str, str, str], ...] = (
    ("synthesis", "speedup", "higher"),
    ("datacenter_traces", "speedup", "higher"),
    ("horizon_percentile", "speedup_vs_rebuild", "higher"),
    ("horizon_percentile", "ratio_vs_peak", "lower"),
    ("horizon_percentile", "max_rel_deviation", "lower"),
    ("replay_faulty", "masked_vs_plain", "lower"),
    ("replay_faulty", "faulty_vs_plain", "lower"),
    ("replay_checkpoint", "disabled_vs_plain", "lower"),
    ("replay_checkpoint", "checkpoint_vs_plain", "lower"),
    ("allocate_sharded", "speedup_vs_exact", "higher"),
    ("allocate_sharded", "proxy_ratio", "lower"),
    ("churn", "p99_vs_p50", "lower"),
    # slo_frontier is fully seeded, so both entries are deterministic:
    # the ratio must land exactly on the committed value on any box, and
    # the equivalence flag is 1.0 (byte-identical serial vs pooled).
    ("slo_frontier", "worst_p99_vs_slo", "lower"),
    ("slo_frontier", "serial_equals_parallel", "higher"),
)

#: Wall-clock entries shown for context (never gated; box-dependent).
INFORMATIONAL_ENTRIES: tuple[tuple[str, str], ...] = (
    ("kernels", "sizes.1000.build_ms"),
    ("kernels", "sizes.1000.update_ms"),
    ("kernels", "sizes.1000.allocate_ms"),
    ("replay", "modes.static.per_period_ms"),
    ("replay", "modes.dynamic.per_period_ms"),
    ("replay_faulty", "variants.faulty.per_period_ms"),
    ("replay_checkpoint", "variants.checkpointed.per_period_ms"),
    ("synthesis", "v2_ms"),
    ("datacenter_traces", "v2_ms"),
    ("allocate_sweep", "warm_ms"),
    ("horizon_percentile", "p2_fold_ms"),
    ("allocate_sharded", "sharded_ms"),
    ("allocate_sharded", "large.wall_s"),
    ("allocate_sharded", "deep.wall_s"),
    ("allocate_sharded", "deep.peak_rss_mb"),
    ("churn", "p99_ms"),
    ("churn", "events_per_s"),
    ("slo_frontier", "p99_ms"),
    ("slo_frontier", "frontier_ms"),
)


def resolve(data: dict, section: str, dotted: str):
    """Look ``section.dotted.key`` up, returning None when absent."""
    node = data.get(section)
    for part in dotted.split("."):
        if not isinstance(node, dict):
            return None
        node = node.get(part)
    return node


def compare(
    fresh: dict, committed: dict, max_regression: float = 0.25
) -> tuple[list[str], list[str]]:
    """Diff two trajectories; returns ``(failures, report_lines)``.

    A gated entry regresses when it moves against its direction by more
    than ``max_regression`` relative to the committed value.  Entries
    (or whole sections) present in the committed trajectory but missing
    from the fresh one are failures; entries missing from *both* are
    skipped, so retiring a gate only requires deleting its committed
    key.
    """
    failures: list[str] = []
    report: list[str] = []

    for section in committed:
        if section not in fresh:
            failures.append(f"section {section!r} missing from fresh trajectory")

    for section, dotted, direction in GATED_ENTRIES:
        reference = resolve(committed, section, dotted)
        if reference is None:
            continue  # retired gate: committed key already deleted
        value = resolve(fresh, section, dotted)
        label = f"{section}.{dotted}"
        if value is None:
            failures.append(f"gate key {label} missing from fresh trajectory")
            continue
        if not reference > 0:
            failures.append(f"gate key {label}: committed value {reference} unusable")
            continue
        change = value / reference - 1.0
        worse = -change if direction == "higher" else change
        status = "REGRESSION" if worse > max_regression else "ok"
        report.append(
            f"  {label:<45} {reference:>10.3f} -> {value:>10.3f} "
            f"({change:+.1%}, {direction} is better) {status}"
        )
        if worse > max_regression:
            failures.append(
                f"{label} regressed {worse:.1%} ({reference} -> {value}, "
                f"allowed {max_regression:.0%})"
            )

    for section, dotted in INFORMATIONAL_ENTRIES:
        reference = resolve(committed, section, dotted)
        value = resolve(fresh, section, dotted)
        if reference is None or value is None or not reference > 0:
            continue
        report.append(
            f"  {f'{section}.{dotted}':<45} {reference:>10.3f} -> {value:>10.3f} "
            f"({value / reference - 1.0:+.1%}) [informational]"
        )

    return failures, report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff a fresh BENCH_scaling.json against the committed one."
    )
    parser.add_argument("fresh", help="freshly generated trajectory JSON")
    parser.add_argument(
        "--committed",
        default=str(REPO_ROOT / "BENCH_scaling.json"),
        help="committed trajectory to compare against (default: repo root)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed relative regression on gated entries (default: 0.25)",
    )
    args = parser.parse_args(argv)

    try:
        fresh = json.loads(Path(args.fresh).read_text())
        committed = json.loads(Path(args.committed).read_text())
    except (OSError, json.JSONDecodeError) as error:
        print(f"bench comparison FAILED: cannot load trajectory ({error})")
        return 1

    failures, report = compare(fresh, committed, args.max_regression)
    print(f"bench trajectory: {args.fresh} vs {args.committed}")
    for line in report:
        print(line)
    if failures:
        print(f"bench comparison FAILED ({len(failures)} finding(s)):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("bench comparison passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
