#!/usr/bin/env python
"""Docs health checker (run by the CI docs job and tests/test_docs.py).

Three checks over ``README.md`` and ``docs/*.md``:

1. **Intra-repo links resolve** — every relative markdown link target
   must exist in the repository (external ``http(s)``/``mailto`` links
   and pure anchors are skipped).
2. **Documented CLI commands parse** — every fenced-code-block line
   invoking ``python -m repro.cli`` is re-parsed through the real
   argparse parser (``repro.cli.build_parser``), so renaming an
   experiment or a flag breaks the build instead of silently rotting
   the docs.
3. **README benchmark table is fresh** — the N=1000 numbers quoted in
   README must agree with ``BENCH_scaling.json`` within a slack factor
   (wall-clock timings are noisy run to run; the check catches stale
   *kernels* — a number from before an optimisation landed — not
   box-to-box jitter).

Exit status 0 when all checks pass; 1 with a per-finding report
otherwise.
"""

from __future__ import annotations

import json
import re
import shlex
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

DOC_FILES = [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE = re.compile(r"^```")
_CLI = re.compile(r"python -m repro\.cli\s+(.*)$")


def check_links(errors: list[str]) -> None:
    for doc in DOC_FILES:
        for lineno, line in enumerate(doc.read_text().splitlines(), start=1):
            for target in _LINK.findall(line):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                path = target.split("#", 1)[0]
                if not path:
                    continue
                resolved = (doc.parent / path).resolve()
                if not resolved.exists():
                    errors.append(
                        f"{doc.relative_to(REPO_ROOT)}:{lineno}: broken link -> {target}"
                    )


def iter_code_lines(doc: Path):
    in_fence = False
    for lineno, line in enumerate(doc.read_text().splitlines(), start=1):
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            yield lineno, line


def check_cli_commands(errors: list[str]) -> None:
    from repro.cli import build_parser

    parser = build_parser()
    for doc in DOC_FILES:
        for lineno, line in iter_code_lines(doc):
            match = _CLI.search(line)
            if match is None:
                continue
            try:
                args = shlex.split(match.group(1), comments=True)
            except ValueError as error:
                errors.append(
                    f"{doc.relative_to(REPO_ROOT)}:{lineno}: unparsable command ({error})"
                )
                continue
            try:
                parser.parse_args(args)
            except SystemExit as status:
                if status.code not in (0, None):
                    errors.append(
                        f"{doc.relative_to(REPO_ROOT)}:{lineno}: CLI rejects "
                        f"documented command: python -m repro.cli {' '.join(args)}"
                    )


#: Quoted README timings may drift from the committed JSON by at most
#: this factor in either direction.  Run-to-run noise on one box is
#: well under 1.5x; a stale pre-optimisation number (e.g. the 3x
#: allocate win) is well over it.
_BENCH_SLACK = 1.5

_FLOAT = re.compile(r"\d+(?:\.\d+)?")


def _row_numbers(readme: str, label: str) -> list[float] | None:
    """The numeric cells of the README table row containing ``label``."""
    for line in readme.splitlines():
        if label in line and line.lstrip().startswith("|"):
            cells = line.split("|")[2:]
            return [float(m) for cell in cells for m in _FLOAT.findall(cell)]
    return None


def check_bench_table(errors: list[str]) -> None:
    readme = (REPO_ROOT / "README.md").read_text()
    bench_path = REPO_ROOT / "BENCH_scaling.json"
    if not bench_path.exists():
        errors.append("BENCH_scaling.json missing (README quotes it)")
        return
    bench = json.loads(bench_path.read_text())
    kernels = bench["kernels"]["sizes"]["1000"]
    replay = bench["replay"]["modes"]
    synthesis = bench["synthesis"]
    dcgen = bench["datacenter_traces"]
    sweep = bench["allocate_sweep"]
    horizon = bench["horizon_percentile"]
    faulty = bench["replay_faulty"]
    checkpoint = bench["replay_checkpoint"]
    sharded = bench["allocate_sharded"]
    expected = {
        "cost-matrix build": [kernels["build_ms"]],
        "streaming cost update": [kernels["update_ms"]],
        "indexed fast path, cold": [kernels["allocate_ms"]],
        "warm cross-period sweep": [sweep["warm_ms"]],
        "profile v2 vs v1": [dcgen["v2_ms"], dcgen["v1_ms"]],
        "synthesis v2 vs v1": [synthesis["v2_ms"], synthesis["v1_ms"]],
        "static / dynamic v/f": [
            replay["static"]["per_period_ms"],
            replay["dynamic"]["per_period_ms"],
        ],
        "p2 fold vs rebuild": [horizon["p2_fold_ms"], horizon["rebuild_ms"]],
        "fault-mode replay": [faulty["variants"]["faulty"]["per_period_ms"]],
        "checkpointed replay": [
            checkpoint["variants"]["checkpointed"]["per_period_ms"]
        ],
        "sharded vs exact ALLOCATE": [
            sharded["sharded_ms"],
            sharded["exact_ms"],
        ],
        "sustained churn decide": [
            bench["churn"]["p50_ms"],
            bench["churn"]["p99_ms"],
        ],
        "SLO frontier worst p99": [
            bench["slo_frontier"]["p99_ms"],
            bench["slo_frontier"]["worst_p99_vs_slo"],
        ],
    }
    for label, values in expected.items():
        quoted = _row_numbers(readme, label)
        if quoted is None:
            errors.append(f"README.md: missing N=1000 benchmark row for {label!r}")
            continue
        if len(quoted) != len(values):
            errors.append(
                f"README.md: benchmark row for {label!r} quotes {len(quoted)} "
                f"number(s), BENCH_scaling.json has {len(values)}"
            )
            continue
        for quote, value in zip(quoted, values, strict=True):
            if not value / _BENCH_SLACK <= quote <= value * _BENCH_SLACK:
                errors.append(
                    f"README.md: stale N=1000 benchmark row for {label!r}: "
                    f"quotes {quote} vs {value} in BENCH_scaling.json "
                    f"(allowed drift {_BENCH_SLACK}x)"
                )


def main() -> int:
    errors: list[str] = []
    check_links(errors)
    check_cli_commands(errors)
    check_bench_table(errors)
    if errors:
        print(f"docs check FAILED ({len(errors)} finding(s)):")
        for error in errors:
            print(f"  - {error}")
        return 1
    docs = ", ".join(str(d.relative_to(REPO_ROOT)) for d in DOC_FILES)
    print(f"docs check passed ({docs})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
